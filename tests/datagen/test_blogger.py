"""Unit tests for the blogger scenario generator (the paper's running example)."""

import pytest

from repro.rdf import EX, RDF
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.datagen.blogger import (
    BloggerConfig,
    blogger_base_graph,
    blogger_dataset,
    blogger_schema,
    sites_per_blogger_query,
    words_per_blogger_query,
)

RDF_TYPE = RDF.term("type")


class TestConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            BloggerConfig(bloggers=0).validate()
        with pytest.raises(ValueError):
            BloggerConfig(cities=0).validate()
        with pytest.raises(ValueError):
            BloggerConfig(multi_city_fraction=1.5).validate()
        with pytest.raises(ValueError):
            BloggerConfig(missing_age_fraction=-0.1).validate()


class TestBaseGraph:
    def test_generation_is_deterministic(self):
        config = BloggerConfig(bloggers=30, seed=9)
        assert blogger_base_graph(config) == blogger_base_graph(config)

    def test_different_seeds_differ(self):
        a = blogger_base_graph(BloggerConfig(bloggers=30, seed=1))
        b = blogger_base_graph(BloggerConfig(bloggers=30, seed=2))
        assert a != b

    def test_requested_number_of_bloggers(self):
        graph = blogger_base_graph(BloggerConfig(bloggers=25))
        assert len(list(graph.instances_of(EX.Blogger))) == 25

    def test_posts_have_sites_and_word_counts(self):
        graph = blogger_base_graph(BloggerConfig(bloggers=20))
        posts = list(graph.instances_of(EX.BlogPost))
        assert posts
        for post in posts[:10]:
            assert graph.value(post, EX.postedOn) is not None
            assert graph.value(post, EX.hasWordCount) is not None

    def test_multi_city_fraction_produces_multivalued_bloggers(self):
        graph = blogger_base_graph(BloggerConfig(bloggers=60, multi_city_fraction=0.5, seed=4))
        multi = [
            blogger
            for blogger in graph.instances_of(EX.Blogger)
            if len(list(graph.objects(blogger, EX.livesIn))) > 1
        ]
        assert multi  # some bloggers live in two cities

    def test_missing_age_fraction(self):
        graph = blogger_base_graph(BloggerConfig(bloggers=60, missing_age_fraction=0.5, seed=4))
        without_age = [
            blogger
            for blogger in graph.instances_of(EX.Blogger)
            if graph.value(blogger, EX.hasAge) is None
        ]
        assert without_age


class TestSchemaAndDataset:
    def test_schema_declares_figure1_vocabulary(self):
        schema = blogger_schema()
        for class_name in ("Blogger", "BlogPost", "City", "Site", "Age", "Name", "Value"):
            assert schema.has_class(class_name)
        for property_name in (
            "acquaintedWith",
            "identifiedBy",
            "hasAge",
            "livesIn",
            "wrotePost",
            "postedOn",
            "hasWordCount",
        ):
            assert schema.has_property(property_name)

    def test_dataset_instance_is_queryable(self):
        dataset = blogger_dataset(BloggerConfig(bloggers=30))
        assert len(dataset.instance) > 0
        evaluator = AnalyticalQueryEvaluator(dataset.instance)
        answer = evaluator.answer(sites_per_blogger_query(dataset.schema))
        assert len(answer) > 0

    def test_paper_queries_are_homomorphic_to_the_schema(self):
        schema = blogger_schema()
        sites_per_blogger_query(schema)  # raises on violation
        words_per_blogger_query(schema)

    def test_queries_have_expected_structure(self):
        query = sites_per_blogger_query()
        assert query.dimension_names == ("dage", "dcity")
        assert query.aggregate.name == "count"
        avg_query = words_per_blogger_query()
        assert avg_query.aggregate.name == "avg"
