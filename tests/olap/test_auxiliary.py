"""Unit tests for the auxiliary DRILL-IN query (Definition 6 / Example 6)."""

import pytest

from repro.errors import InvalidOperationError
from repro.rdf import EX, RDF
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.parser import parse_query
from repro.olap.auxiliary import auxiliary_join_columns, build_auxiliary_query

from tests.conftest import make_sites_query, make_views_query

RDF_TYPE = RDF.term("type")


class TestExample6:
    def test_auxiliary_query_of_example6(self):
        """q_aux(x, d2, d3) :- x postedOn d1, d1 hasUrl d2, d1 supportsBrowser d3."""
        classifier = make_views_query().classifier
        auxiliary = build_auxiliary_query(classifier, "d3")
        assert auxiliary.head_names == ("x", "d2", "d3")
        expected_body = {
            TriplePattern(Variable("x"), EX.postedOn, Variable("d1")),
            TriplePattern(Variable("d1"), EX.hasUrl, Variable("d2")),
            TriplePattern(Variable("d1"), EX.supportsBrowser, Variable("d3")),
        }
        assert set(auxiliary.body) == expected_body

    def test_type_atom_is_not_pulled_in(self):
        """The rdf:type Video triple shares only the distinguished x, so it stays out."""
        classifier = make_views_query().classifier
        auxiliary = build_auxiliary_query(classifier, "d3")
        type_atoms = [p for p in auxiliary.body if p.predicate == RDF_TYPE]
        assert type_atoms == []

    def test_join_columns_are_the_distinguished_variables(self):
        classifier = make_views_query().classifier
        auxiliary = build_auxiliary_query(classifier, "d3")
        assert auxiliary_join_columns(classifier, auxiliary) == ("x", "d2")


class TestClosureBehaviour:
    def test_seed_only_when_dimension_connects_to_distinguished_variable(self):
        """Drilling the sites query back in on dage needs only the hasAge atom."""
        classifier = make_sites_query().classifier.with_head(["x", "dcity"])
        auxiliary = build_auxiliary_query(classifier, "dage")
        assert set(auxiliary.body) == {TriplePattern(Variable("x"), EX.hasAge, Variable("dage"))}
        assert auxiliary.head_names == ("x", "dage")

    def test_closure_follows_chains_of_existential_variables(self):
        classifier = parse_query(
            "c(?x, ?d) :- ?x rdf:type ex:Fact, ?x ex:dim0 ?d, "
            "?x ex:hasDetail ?e, ?e ex:partOf ?f, ?f ex:detailA ?da, ?f ex:detailB ?db"
        )
        auxiliary = build_auxiliary_query(classifier, "da")
        predicates = {pattern.predicate.local_name() for pattern in auxiliary.body}
        # The chain hasDetail -> partOf -> detailA is pulled in through the
        # existential variables e and f; detailB is pulled in too because it
        # shares the existential f; dim0 touches only distinguished variables.
        assert predicates == {"hasDetail", "partOf", "detailA", "detailB"}
        assert auxiliary.head_names == ("x", "da")

    def test_multiple_new_dimensions(self):
        classifier = make_views_query().classifier
        auxiliary = build_auxiliary_query(classifier, ["d1", "d3"])
        assert auxiliary.head_names == ("x", "d2", "d1", "d3")

    def test_head_keeps_classifier_order_for_distinguished_variables(self):
        classifier = parse_query(
            "c(?x, ?d1, ?d2) :- ?x rdf:type ex:Fact, ?x ex:p ?d1, ?x ex:q ?d2, ?x ex:r ?new"
        )
        auxiliary = build_auxiliary_query(classifier, "new")
        # Only x occurs in the selected triples, so dvars = (x,).
        assert auxiliary.head_names == ("x", "new")


class TestValidation:
    def test_distinguished_variable_rejected(self):
        classifier = make_views_query().classifier
        with pytest.raises(InvalidOperationError):
            build_auxiliary_query(classifier, "d2")

    def test_unknown_variable_rejected(self):
        classifier = make_views_query().classifier
        with pytest.raises(InvalidOperationError):
            build_auxiliary_query(classifier, "ghost")

    def test_empty_dimension_list_rejected(self):
        classifier = make_views_query().classifier
        with pytest.raises(InvalidOperationError):
            build_auxiliary_query(classifier, [])
