"""Unit tests for persisting and restoring materialized query results."""

import os

import pytest

from repro.errors import MaterializationError
from repro.rdf import EX, Literal
from repro.algebra.relation import Relation
from repro.analytics import AnalyticalQuery, AnalyticalQueryEvaluator
from repro.olap import Cube, DrillIn, DrillOut, OLAPSession, Slice
from repro.persistence import (
    load_materialized_results,
    load_relation,
    save_materialized_results,
    save_relation,
)

from tests.conftest import make_sites_query, make_views_query


class TestRelationRoundtrip:
    def test_terms_numbers_strings_and_none(self, tmp_path):
        relation = Relation(
            ["x", "dage", "dcity", "k", "v", "note"],
            [
                (EX.user1, Literal(28), EX.term("Madrid"), 1, 3.5, "plain text"),
                (EX.user3, Literal("35"), EX.term("NY"), 2, True, None),
            ],
        )
        path = str(tmp_path / "relation.tsv")
        save_relation(relation, path)
        recovered = load_relation(path)
        assert recovered.columns == relation.columns
        assert recovered.bag_equal(relation)

    def test_duplicate_rows_survive(self, tmp_path):
        relation = Relation(["a"], [(1,), (1,), (2,)])
        path = str(tmp_path / "dups.tsv")
        save_relation(relation, path)
        assert load_relation(path).to_multiset() == relation.to_multiset()

    def test_empty_relation(self, tmp_path):
        relation = Relation(["a", "b"], [])
        path = str(tmp_path / "empty.tsv")
        save_relation(relation, path)
        recovered = load_relation(path)
        assert recovered.columns == ("a", "b") and len(recovered) == 0

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "broken.tsv"
        path.write_text("")
        with pytest.raises(MaterializationError):
            load_relation(str(path))

    def test_arity_mismatch_rejected(self, tmp_path):
        path = tmp_path / "broken.tsv"
        path.write_text("a\tb\njson:1\n")
        with pytest.raises(MaterializationError):
            load_relation(str(path))

    def test_unpersistable_value_rejected(self, tmp_path):
        relation = Relation(["a"], [(object(),)])
        with pytest.raises(MaterializationError):
            save_relation(relation, str(tmp_path / "bad.tsv"))


class TestMaterializedResultsRoundtrip:
    def test_save_and_load_answer_and_partial(self, example2_instance, sites_query, tmp_path):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        directory = str(tmp_path / "Q_sites")
        save_materialized_results(materialized, directory)
        assert os.path.exists(os.path.join(directory, "manifest.json"))

        restored = load_materialized_results(directory, sites_query)
        assert restored.answer.relation.bag_equal(materialized.answer.relation)
        assert restored.partial.relation.bag_equal(materialized.partial.relation)
        assert restored.partial.dimension_columns == materialized.partial.dimension_columns

    def test_answer_only_bundle(self, example2_instance, sites_query, tmp_path):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query, materialize_partial=False)
        directory = str(tmp_path / "Q_ans_only")
        save_materialized_results(materialized, directory)
        restored = load_materialized_results(directory, sites_query)
        assert restored.has_answer() and not restored.has_partial()

    def test_mismatched_query_rejected(self, example2_instance, sites_query, tmp_path):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        directory = str(tmp_path / "Q_sites")
        save_materialized_results(evaluator.evaluate(sites_query), directory)
        other = AnalyticalQuery(
            sites_query.classifier, sites_query.measure, "sum", name=sites_query.name
        )
        with pytest.raises(MaterializationError):
            load_materialized_results(directory, other)

    def test_missing_manifest_rejected(self, sites_query, tmp_path):
        with pytest.raises(MaterializationError):
            load_materialized_results(str(tmp_path), sites_query)


class TestSessionIntegration:
    def test_restore_enables_rewriting_without_reexecution(
        self, example2_instance, sites_query, tmp_path
    ):
        # First session: execute and persist.
        first = OLAPSession(example2_instance)
        first.execute(sites_query)
        directory = str(tmp_path / "saved")
        first.save_materialized(sites_query, directory)
        reference = first.transform(sites_query, DrillOut("dage"), strategy="rewrite")

        # Second session: restore instead of executing, then rewrite.
        second = OLAPSession(example2_instance)
        second.restore_materialized(sites_query, directory)
        restored_cube = second.transform(sites_query, DrillOut("dage"), strategy="rewrite")
        assert restored_cube.same_cells(reference)
        sliced = second.transform(sites_query, Slice("dage", Literal(35)), strategy="rewrite")
        assert len(sliced) == 1

    def test_drill_in_after_restore(self, figure3_instance, views_query, tmp_path):
        first = OLAPSession(figure3_instance)
        first.execute(views_query)
        directory = str(tmp_path / "views")
        first.save_materialized(views_query, directory)

        second = OLAPSession(figure3_instance)
        second.restore_materialized(views_query, directory)
        refined = second.transform(views_query, DrillIn("d3"), strategy="rewrite")
        assert refined.cell(Literal("URL1"), Literal("firefox")) == 100
