"""Unit tests for the OLAP operations as query transformations (Example 3)."""

import pytest

from repro.errors import InvalidOperationError
from repro.rdf import EX, Literal
from repro.analytics.sigma import DimensionRestriction
from repro.olap.operations import Dice, DrillIn, DrillOut, Slice, compose

from tests.conftest import make_sites_query, make_views_query


class TestSlice:
    def test_slice_restricts_sigma_to_single_value(self):
        query = make_sites_query()
        sliced = Slice("dage", Literal(35)).apply(query)
        assert sliced.is_extended()
        assert sliced.sigma["dage"].values == (Literal(35),)
        assert sliced.sigma["dcity"].is_full
        # The classifier and measure are untouched (only Σ changes).
        assert sliced.classifier == query.classifier
        assert sliced.measure == query.measure

    def test_slice_unknown_dimension(self):
        with pytest.raises(InvalidOperationError):
            Slice("dbrowser", 1).apply(make_sites_query())

    def test_slice_on_sliced_query_intersects(self):
        query = make_sites_query()
        once = Slice("dage", Literal(35)).apply(query)
        with pytest.raises(Exception):
            # Slicing the same dimension to a different value empties Σ(dage).
            Slice("dage", Literal(28)).apply(once)

    def test_describe(self):
        assert "dage" in Slice("dage", 35).describe()


class TestDice:
    def test_dice_with_value_sets(self):
        query = make_sites_query()
        diced = Dice({"dage": [Literal(28)], "dcity": [EX.Madrid, EX.Kyoto]}).apply(query)
        assert diced.sigma["dage"].allows(Literal(28))
        assert not diced.sigma["dage"].allows(Literal(35))
        assert diced.sigma["dcity"].allows(EX.Kyoto)

    def test_dice_with_range(self):
        query = make_sites_query()
        diced = Dice({"dage": (20, 30)}).apply(query)
        assert diced.sigma["dage"].allows(Literal(28))
        assert not diced.sigma["dage"].allows(Literal(35))

    def test_dice_with_single_value_behaves_like_slice(self):
        query = make_sites_query()
        diced = Dice({"dage": Literal(28)}).apply(query)
        assert diced.sigma["dage"].values == (Literal(28),)

    def test_dice_with_explicit_restriction_object(self):
        query = make_sites_query()
        diced = Dice({"dage": DimensionRestriction.to_range(20, 30)}).apply(query)
        assert diced.sigma["dage"].allows(25)

    def test_empty_dice_rejected(self):
        with pytest.raises(InvalidOperationError):
            Dice({})

    def test_dice_unknown_dimension(self):
        with pytest.raises(InvalidOperationError):
            Dice({"nope": [1]}).apply(make_sites_query())

    def test_successive_dices_intersect(self):
        query = make_sites_query()
        wide = Dice({"dage": (20, 40)}).apply(query)
        narrow = Dice({"dage": (30, 50)}).apply(wide)
        assert narrow.sigma["dage"].allows(35)
        assert not narrow.sigma["dage"].allows(25)
        assert not narrow.sigma["dage"].allows(45)


class TestDrillOut:
    def test_drill_out_removes_dimension_from_head_and_sigma(self):
        query = make_sites_query()
        drilled = DrillOut("dage").apply(query)
        assert drilled.dimension_names == ("dcity",)
        assert drilled.sigma.dimensions == ("dcity",)
        # The classifier body is unchanged (body(c') ≡ body(c), Example 3).
        assert set(drilled.classifier.body) == set(query.classifier.body)

    def test_drill_out_multiple_dimensions(self):
        query = make_sites_query()
        drilled = DrillOut(["dage", "dcity"]).apply(query)
        assert drilled.dimension_names == ()

    def test_drill_out_unknown_dimension(self):
        with pytest.raises(InvalidOperationError):
            DrillOut("nope").apply(make_sites_query())

    def test_drill_out_requires_at_least_one_dimension(self):
        with pytest.raises(InvalidOperationError):
            DrillOut([])

    def test_drill_out_duplicates_rejected(self):
        with pytest.raises(InvalidOperationError):
            DrillOut(["dage", "dage"])


class TestDrillIn:
    def test_drill_in_adds_body_variable_as_dimension(self):
        query = make_views_query()
        drilled = DrillIn("d3").apply(query)
        assert drilled.dimension_names == ("d2", "d3")
        assert drilled.sigma["d3"].is_full

    def test_drill_in_inverse_of_drill_out(self):
        """Example 3: DRILL-IN on dage applied to Q_DRILL-OUT reproduces Q."""
        query = make_sites_query()
        drilled_out = DrillOut("dage").apply(query)
        back = DrillIn("dage").apply(drilled_out)
        assert set(back.dimension_names) == set(query.dimension_names)
        assert back.classifier.body == query.classifier.body

    def test_drill_in_requires_classifier_body_variable(self):
        query = make_sites_query()
        with pytest.raises(InvalidOperationError):
            DrillIn("vsite").apply(query)  # a measure variable, not in the classifier

    def test_drill_in_rejects_existing_dimension(self):
        query = make_views_query()
        with pytest.raises(InvalidOperationError):
            DrillIn("d2").apply(query)

    def test_drill_in_rejects_fact_variable(self):
        query = make_views_query()
        with pytest.raises(InvalidOperationError):
            DrillIn("x").apply(query)

    def test_drill_in_multiple_dimensions(self):
        query = make_views_query()
        drilled = DrillIn(["d1", "d3"]).apply(query)
        assert drilled.dimension_names == ("d2", "d1", "d3")


class TestCompose:
    def test_sequence_of_operations(self):
        query = make_sites_query()
        result = compose(query, [Slice("dage", Literal(28)), DrillOut("dage")])
        assert result.dimension_names == ("dcity",)

    def test_empty_sequence_is_identity(self):
        query = make_sites_query()
        assert compose(query, []) is query
