"""Unit tests for the cost-based OLAP planner (:mod:`repro.olap.planner`)."""

import pytest

from repro.rdf import EX, Literal
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.olap.cube import Cube
from repro.olap.operations import Dice, DrillIn, DrillOut, Slice
from repro.olap.planner import Plan
from repro.olap.session import OLAPSession

from tests.conftest import make_sites_query, make_views_query


@pytest.fixture()
def session(example2_instance):
    # The strategy-preference assertions below pin the cost model's ranking
    # under uniform per-row costs; the row engine keeps that ranking stable
    # regardless of whether numpy (and its 0.35x scratch multiplier) is
    # installed.  Columnar-engine pricing is covered in
    # tests/algebra/test_columnar.py.
    return OLAPSession(example2_instance, engine="rows")


@pytest.fixture()
def executed(session):
    query = make_sites_query()
    session.execute(query)
    return session, query


def _plan(session, query, operation) -> Plan:
    entry = session.cache.get(query, session.instance)
    return session.planner.plan(
        query,
        operation,
        operation.apply(query),
        entry.materialized if entry is not None else None,
    )


class TestPlanEnumeration:
    def test_scratch_is_always_a_candidate(self, session):
        query = make_sites_query()  # never executed: nothing cached
        plan = _plan(session, query, Slice("dage", Literal(35)))
        assert [candidate.strategy for candidate in plan.candidates] == ["scratch"]

    def test_rewrite_candidate_beats_scratch_when_materialized(self, executed):
        session, query = executed
        plan = _plan(session, query, Slice("dage", Literal(35)))
        strategies = [candidate.strategy for candidate in plan.candidates]
        assert strategies[0] == "rewrite[slice-dice/ans]"
        assert "scratch" in strategies
        assert plan.chosen.cost <= plan.candidates[-1].cost

    def test_drill_out_uses_partial(self, executed):
        session, query = executed
        plan = _plan(session, query, DrillOut("dage"))
        assert plan.chosen.strategy == "rewrite[drill-out/pres]"

    def test_drill_out_without_partial_falls_back_to_scratch(self, example2_instance):
        session = OLAPSession(example2_instance, materialize_partial=False)
        query = make_sites_query()
        session.execute(query)
        plan = _plan(session, query, DrillOut("dage"))
        assert plan.chosen.strategy == "scratch"

    def test_repeated_operation_prefers_cached_answer(self, executed):
        session, query = executed
        operation = Slice("dage", Literal(35))
        session.transform(query, operation, strategy="plan")
        plan = _plan(session, query, operation)
        assert plan.chosen.strategy == "cached"

    def test_compatible_cached_view_is_found(self, executed):
        """A DICE strengthening a cached SLICE reuses the slice's answer."""
        session, query = executed
        sliced = session.transform(query, Slice("dage", Literal(35)), strategy="plan")
        session.forget(query)  # the root's results are gone: only the slice remains
        operation = Dice({"dage": [Literal(35)], "dcity": [EX.term("NY")]})
        cube = session.transform(query, operation, strategy="plan")
        assert session.history[-1].strategy == "plan[compat[slice-dice/ans]]"
        assert cube.cells() == {(Literal(35), EX.term("NY")): 2}
        assert sliced.same_cells(sliced)  # the slice itself is untouched

    def test_equal_costs_break_ties_on_strategy_name(self, executed):
        # Plan ordering must be deterministic even for cost ties: the
        # strategy name is the stable secondary key, so explain() output and
        # golden comparisons never depend on candidate enumeration order.
        from repro.olap.planner import PlanCandidate

        session, query = executed
        operation = Slice("dage", Literal(35))

        def run():  # pragma: no cover - never executed
            raise AssertionError

        tied = [
            PlanCandidate(name, 10.0, 0, "tie", run)
            for name in ("zeta", "alpha", "midway")
        ]
        for permutation in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
            plan = Plan(operation, operation.apply(query), [tied[i] for i in permutation])
            assert [c.strategy for c in plan.candidates] == ["alpha", "midway", "zeta"]

    def test_parallel_candidate_enumerated_only_with_executor(self, example2_instance):
        query = make_sites_query()
        serial_session = OLAPSession(example2_instance)
        serial_session.execute(query)
        plan = _plan(serial_session, query, Slice("dage", Literal(35)))
        assert "parallel" not in [c.strategy for c in plan.candidates]

        with OLAPSession(
            example2_instance, workers=2, parallel_backend="thread"
        ) as parallel_session:
            parallel_session.execute(query)
            plan = _plan(parallel_session, query, Slice("dage", Literal(35)))
            strategies = [c.strategy for c in plan.candidates]
            assert "parallel" in strategies
            # On a paper-sized instance the dispatch overhead prices the
            # parallel candidate above plain scratch: it must not be chosen.
            parallel = next(c for c in plan.candidates if c.strategy == "parallel")
            scratch = next(c for c in plan.candidates if c.strategy == "scratch")
            assert parallel.cost > scratch.cost

    def test_parallel_candidate_executes_correctly_when_forced(self, example2_instance):
        with OLAPSession(
            example2_instance, workers=2, shard_count=3, parallel_backend="thread"
        ) as session:
            query = make_sites_query()
            session.execute(query)
            operation = Slice("dage", Literal(35))
            plan = _plan(session, query, operation)
            parallel = next(c for c in plan.candidates if c.strategy == "parallel")
            answer, partial = parallel.execute()
            transformed = operation.apply(query)
            scratch = AnalyticalQueryEvaluator(example2_instance).answer(transformed)
            assert Cube(answer, transformed).same_cells(Cube(scratch, transformed))
            assert partial is not None

    def test_plans_are_sorted_by_cost(self, executed):
        session, query = executed
        plan = _plan(session, query, Slice("dage", Literal(35)))
        costs = [candidate.cost for candidate in plan.candidates]
        assert costs == sorted(costs)


class TestPlanExecution:
    @pytest.mark.parametrize(
        "operation",
        [
            Slice("dage", Literal(35)),
            Dice({"dcity": [EX.term("Madrid")]}),
            DrillOut("dage"),
        ],
        ids=["slice", "dice", "drill-out"],
    )
    def test_planned_answers_match_scratch(self, executed, operation):
        session, query = executed
        planned = session.transform(query, operation, strategy="plan")
        scratch = Cube(
            AnalyticalQueryEvaluator(session.instance).answer(planned.query), planned.query
        )
        assert planned.same_cells(scratch)

    def test_drill_in_planned_on_paper_example(self, figure3_instance):
        """On the 10-triple Figure 3 graph any strategy is cheap; the planner
        may legitimately pick scratch — only the cells are pinned here."""
        session = OLAPSession(figure3_instance)
        query = make_views_query()
        session.execute(query)
        cube = session.transform(query, DrillIn("d3"), strategy="plan")
        assert session.history[-1].strategy.startswith("plan[")
        assert cube.cells() == {
            (Literal("URL1"), Literal("firefox")): 100,
            (Literal("URL2"), Literal("chrome")): 100,
        }

    def test_drill_in_planned_prefers_rewriting_at_scale(self, small_video_dataset):
        """With a realistically sized instance, pres(Q) + q_aux wins the plan."""
        from repro.datagen.videos import views_per_url_query

        dataset = small_video_dataset
        # Row engine: the assertion pins the uniform-cost ranking (see the
        # session fixture's note).
        session = OLAPSession(dataset.instance, dataset.schema, engine="rows")
        query = views_per_url_query(dataset.schema)
        session.execute(query)
        cube = session.transform(query, DrillIn("d3"), strategy="plan")
        assert session.history[-1].strategy == "plan[rewrite[drill-in/pres+aux]]"
        scratch = Cube(
            AnalyticalQueryEvaluator(dataset.instance).answer(cube.query), cube.query
        )
        assert cube.same_cells(scratch)

    def test_planned_transform_materializes_partial_for_chaining(self, executed):
        session, query = executed
        sliced = session.transform(query, Slice("dage", Literal(35)), strategy="plan")
        materialized = session.materialized(sliced.query.name)
        assert materialized.has_partial()
        # ... so drilling out an *unrestricted* dimension of the slice stays
        # on the reuse path.
        session.transform(sliced.query.name, DrillOut("dcity"), strategy="plan")
        assert session.history[-1].strategy == "plan[rewrite[drill-out/pres]]"

    def test_drill_out_of_restricted_dimension_replans_to_scratch(self, executed):
        """DRILL-OUT drops the removed dimension's Σ entry, re-admitting facts
        the restriction excluded — pres(Q) lacks those, so the rewriting is
        inapplicable and the planner must go back to the instance."""
        from repro.errors import RewritingError

        session, query = executed
        sliced = session.transform(query, Slice("dage", Literal(35)), strategy="plan")
        drilled = session.transform(sliced.query.name, DrillOut("dage"), strategy="plan")
        assert session.history[-1].strategy == "plan[scratch]"
        scratch = Cube(
            AnalyticalQueryEvaluator(session.instance).answer(drilled.query), drilled.query
        )
        assert drilled.same_cells(scratch)
        # Madrid (dage=28, excluded by the slice) is back in the drilled cube.
        assert drilled.cell(EX.term("Madrid")) == 3
        with pytest.raises(RewritingError):
            session.transform(sliced.query.name, DrillOut("dage"), strategy="rewrite")


class TestExplain:
    def test_explain_lists_all_candidates(self, executed):
        session, query = executed
        session.transform(query, Slice("dage", Literal(35)), strategy="plan")
        explanation = session.history[-1].details["plan"]
        assert explanation.startswith("plan: slice dage")
        assert "rewrite[slice-dice/ans]" in explanation
        assert "scratch" in explanation
        assert "->" in explanation

    def test_explain_last_helper(self, executed):
        session, query = executed
        # execute() never goes through the planner, but the operation is
        # still reported (strategy + timing) instead of a placeholder.
        explanation = session.explain_last()
        assert "scratch" in explanation
        assert "execute" in explanation
        session.transform(query, DrillOut("dage"), strategy="plan")
        assert "drill-out" in session.explain_last()

    def test_explain_last_reports_cache_hits(self, executed):
        session, query = executed
        session.execute(query)  # second run: served from cache
        explanation = session.explain_last()
        assert "cache" in explanation
        assert "execute" in explanation

    def test_explain_last_empty_history(self, session):
        assert "no operations" in session.explain_last()

    def test_record_carries_estimated_cost(self, executed):
        session, query = executed
        session.transform(query, Slice("dage", Literal(35)), strategy="plan")
        assert session.history[-1].details["estimated_cost"] > 0
