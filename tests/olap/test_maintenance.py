"""Unit tests for incremental maintenance (:mod:`repro.olap.maintenance`)."""

import pytest

from repro.rdf import EX, Literal, RDF, Triple
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery
from repro.olap.cube import Cube
from repro.olap.maintenance import DeltaMaintainer
from repro.olap.operations import Slice

from tests.conftest import make_sites_query, make_words_query

RDF_TYPE = RDF.term("type")


def _maintainer(instance):
    return DeltaMaintainer(AnalyticalQueryEvaluator(instance))


def _refresh_and_compare(instance, query, mutate):
    """Evaluate, mutate, patch — and compare against a fresh recompute."""
    evaluator = AnalyticalQueryEvaluator(instance)
    materialized = evaluator.evaluate(query)
    version = instance.version
    mutate(instance)
    delta = instance.deltas_since(version)
    assert delta is not None
    refreshed = _maintainer(instance).refresh(materialized, delta)
    assert refreshed is not None
    patched = Cube(refreshed.answer, query)
    scratch = Cube(AnalyticalQueryEvaluator(instance).answer(query), query)
    assert patched.same_cells(scratch), (patched.cells(), scratch.cells())
    # The patched partial also matches a fresh one, modulo newk() keys.
    fresh_partial = AnalyticalQueryEvaluator(instance).partial_result(query)
    keyless = ["x"] + list(query.dimension_names) + [query.measure_variable.name]
    from repro.algebra.operators import project

    assert project(refreshed.partial.storage.materialize(), keyless).bag_equal(
        project(fresh_partial.storage.materialize(), keyless)
    )
    return refreshed


def _add_blogger(instance, name, age, city, sites=(), words=()):
    user = EX.term(name)
    instance.add(Triple(user, RDF_TYPE, EX.Blogger))
    instance.add(Triple(user, EX.hasAge, Literal(age)))
    instance.add(Triple(user, EX.livesIn, EX.term(city)))
    for index, site in enumerate(sites):
        post = EX.term(f"{name}_post{index}")
        instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
        instance.add(Triple(user, EX.wrotePost, post))
        instance.add(Triple(post, EX.postedOn, EX.term(site)))
    for index, count in enumerate(words):
        post = EX.term(f"{name}_wpost{index}")
        instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
        instance.add(Triple(user, EX.wrotePost, post))
        instance.add(Triple(post, EX.hasWordCount, Literal(count)))


class TestAffectedFacts:
    def test_irrelevant_triples_touch_nothing(self, example2_instance, sites_query):
        maintainer = _maintainer(example2_instance)
        version = example2_instance.version
        example2_instance.add(Triple(EX.term("w1"), RDF_TYPE, EX.Website))
        delta = example2_instance.deltas_since(version)
        assert maintainer.affected_facts(sites_query, delta) == set()

    def test_added_measure_triple_flags_only_its_fact(
        self, example2_instance, sites_query
    ):
        maintainer = _maintainer(example2_instance)
        version = example2_instance.version
        post = EX.term("p9")
        example2_instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
        example2_instance.add(Triple(EX.term("user1"), EX.wrotePost, post))
        example2_instance.add(Triple(post, EX.postedOn, EX.term("s2")))
        delta = example2_instance.deltas_since(version)
        affected = maintainer.affected_facts(sites_query, delta)
        assert affected == {example2_instance.encode_term(EX.term("user1"))}

    def test_removed_triple_found_through_the_overlay(
        self, example2_instance, sites_query
    ):
        """Embeddings through a *removed* triple no longer exist in the new
        graph; the overlay (new ∪ removed) still finds the fact that lost
        them."""
        maintainer = _maintainer(example2_instance)
        version = example2_instance.version
        example2_instance.remove(
            Triple(EX.term("p4"), EX.postedOn, EX.term("s2"))
        )
        delta = example2_instance.deltas_since(version)
        affected = maintainer.affected_facts(sites_query, delta)
        assert example2_instance.encode_term(EX.term("user3")) in affected

    def test_classifier_triple_flags_fact(self, example2_instance, sites_query):
        maintainer = _maintainer(example2_instance)
        version = example2_instance.version
        example2_instance.remove(Triple(EX.term("user4"), EX.livesIn, EX.term("NY")))
        delta = example2_instance.deltas_since(version)
        affected = maintainer.affected_facts(sites_query, delta)
        assert example2_instance.encode_term(EX.term("user4")) in affected


class TestRefreshEquality:
    """Patched cubes must equal from-scratch recomputation, per aggregate."""

    @pytest.mark.parametrize("aggregate", ["count", "sum", "avg", "min", "max", "count_distinct"])
    def test_additions_and_removals(self, example4_instance, aggregate):
        base = make_words_query()
        query = AnalyticalQuery(
            base.classifier, base.measure, aggregate, name=f"Q_{aggregate}"
        )

        def mutate(instance):
            _add_blogger(instance, "newbie", 28, "Madrid", words=(55, 700))
            instance.remove(Triple(EX.term("user1"), EX.wrotePost, EX.term("p2")))

        _refresh_and_compare(example4_instance, query, mutate)

    @pytest.mark.parametrize("aggregate", ["min", "max"])
    def test_extreme_value_removal_forces_group_recompute(
        self, example4_instance, aggregate
    ):
        """Deleting the row holding the group's extreme exercises the
        per-group fallback (the old cell value is no longer usable)."""
        base = make_words_query()
        query = AnalyticalQuery(
            base.classifier, base.measure, aggregate, name=f"Q_{aggregate}"
        )

        def mutate(instance):
            # p2 (120 words) is user1's max; p1 (100) the min — drop both
            # extremes of the (28, Madrid) group in turn.
            target = "p2" if aggregate == "max" else "p1"
            instance.remove(Triple(EX.term("user1"), EX.wrotePost, EX.term(target)))

        _refresh_and_compare(example4_instance, query, mutate)

    def test_fact_disappearing_entirely_drops_its_cells(
        self, example2_instance, sites_query
    ):
        def mutate(instance):
            # user4 is the only (35, NY)... no: user3 shares the group.
            # Remove user4's classifier membership entirely instead.
            instance.remove(Triple(EX.term("user4"), RDF_TYPE, EX.Blogger))

        _refresh_and_compare(example2_instance, sites_query, mutate)

    def test_new_group_appears(self, example2_instance, sites_query):
        def mutate(instance):
            _add_blogger(instance, "kyotoan", 41, "Kyoto", sites=("s1", "s3"))

        refreshed = _refresh_and_compare(example2_instance, sites_query, mutate)
        cube = Cube(refreshed.answer, sites_query)
        assert cube.cell(Literal(41), EX.term("Kyoto")) == 2

    def test_sigma_restricted_query_refreshes(self, example2_instance, sites_query):
        sliced = Slice("dage", Literal(35)).apply(sites_query)

        def mutate(instance):
            _add_blogger(instance, "userN", 35, "NY", sites=("s2",))
            _add_blogger(instance, "userM", 99, "NY", sites=("s2",))  # Σ-excluded

        refreshed = _refresh_and_compare(example2_instance, sliced, mutate)
        cube = Cube(refreshed.answer, sliced)
        assert cube.cell(Literal(35), EX.term("NY")) == 3
        assert cube.get(Literal(99), EX.term("NY")) is None

    def test_multi_valued_dimension_fanout(self, example2_instance, sites_query):
        """A blogger living in *two* cities (RDF multi-valuedness) patches
        into both groups."""

        def mutate(instance):
            _add_blogger(instance, "nomad", 28, "Madrid", sites=("s1",))
            instance.add(Triple(EX.term("nomad"), EX.livesIn, EX.term("Kyoto")))

        _refresh_and_compare(example2_instance, sites_query, mutate)


class TestRefreshProtocol:
    def test_untouched_query_returns_same_object(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        version = example2_instance.version
        example2_instance.add(Triple(EX.term("w1"), RDF_TYPE, EX.Website))
        delta = example2_instance.deltas_since(version)
        refreshed = _maintainer(example2_instance).refresh(materialized, delta)
        assert refreshed is materialized  # re-stamp only, no new objects

    def test_empty_delta_returns_same_object(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        delta = example2_instance.deltas_since(example2_instance.version)
        refreshed = _maintainer(example2_instance).refresh(materialized, delta)
        assert refreshed is materialized

    def test_answer_only_entry_is_not_patchable(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query, materialize_partial=False)
        version = example2_instance.version
        example2_instance.add(Triple(EX.term("userQ"), RDF_TYPE, EX.Blogger))
        delta = example2_instance.deltas_since(version)
        assert _maintainer(example2_instance).refresh(materialized, delta) is None

    def test_fresh_keys_do_not_collide_with_retained_ones(
        self, example2_instance, sites_query
    ):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        version = example2_instance.version
        _add_blogger(example2_instance, "userK", 28, "Madrid", sites=("s1", "s2"))
        delta = example2_instance.deltas_since(version)
        refreshed = _maintainer(example2_instance).refresh(materialized, delta)
        keys = refreshed.partial.storage.column_values(refreshed.partial.key_column)
        assert len(keys) == len(set(keys)) or _distinct_per_measure_row(refreshed)


def _distinct_per_measure_row(materialized):
    """Keys repeat only across classifier rows of one fact, never across
    measure embeddings (the Algorithm-1 dedup invariant)."""
    partial = materialized.partial
    storage = partial.storage
    key_index = storage.column_index(partial.key_column)
    measure_index = storage.column_index(partial.measure_column)
    fact_index = storage.column_index(partial.fact_column)
    seen = {}
    for row in storage.rows:
        value = seen.setdefault(row[key_index], (row[fact_index], row[measure_index]))
        if value != (row[fact_index], row[measure_index]):
            return False
    return True


class TestPlannerIntegration:
    def test_refresh_cached_wins_when_cheapest(self, small_blogger_dataset):
        """A stale DRILL-OUT entry: patching its pres (0.25/row) undercuts
        the per-row grouping rewrite (2/row) and scratch, so the planner
        must choose refresh-cached — and the cube must match scratch."""
        from repro.datagen.blogger import sites_per_blogger_query
        from repro.olap.operations import DrillOut
        from repro.olap.session import OLAPSession

        instance = small_blogger_dataset.instance.copy()
        query = sites_per_blogger_query(small_blogger_dataset.schema)
        session = OLAPSession(instance, small_blogger_dataset.schema)
        session.execute(query)
        operation = DrillOut("dage")
        session.transform(query, operation, strategy="plan")
        _add_blogger(instance, "fresh_user", 33, "Madrid", sites=("site_1",))
        cube = session.transform(query, operation, strategy="plan")
        assert session.history[-1].strategy == "plan[refresh-cached]"
        explanation = session.explain_last()
        assert "refresh-cached" in explanation
        transformed = operation.apply(query)
        scratch = Cube(
            AnalyticalQueryEvaluator(instance).answer(transformed), transformed
        )
        assert cube.same_cells(scratch)

    def test_refresh_cached_loses_to_fresh_exact_hit(self, example2_instance, sites_query):
        """A fresh exact entry must still be served as plan[cached] — the
        refresh candidate is only enumerated for stale entries."""
        from repro.olap.session import OLAPSession

        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        operation = Slice("dage", Literal(35))
        session.transform(sites_query, operation, strategy="plan")
        cube = session.transform(sites_query, operation, strategy="plan")
        assert session.history[-1].strategy == "plan[cached]"
        assert "refresh-cached" not in session.explain_last()
        transformed = operation.apply(sites_query)
        scratch = Cube(
            AnalyticalQueryEvaluator(example2_instance).answer(transformed), transformed
        )
        assert cube.same_cells(scratch)


class TestCostEstimates:
    def test_small_delta_refresh_beats_scratch(self, small_blogger_dataset):
        from repro.datagen.blogger import sites_per_blogger_query

        instance = small_blogger_dataset.instance.copy()
        query = sites_per_blogger_query(small_blogger_dataset.schema)
        evaluator = AnalyticalQueryEvaluator(instance)
        maintainer = DeltaMaintainer(evaluator)
        materialized = evaluator.evaluate(query)
        version = instance.version
        _add_blogger(instance, "bench_userA", 30, "Madrid", sites=("s1",))
        delta = instance.deltas_since(version)
        refresh_cost = maintainer.estimate_refresh_cost(materialized, delta)
        scratch_cost = maintainer.estimate_scratch_cost(query)
        assert refresh_cost < scratch_cost

    def test_cost_grows_with_delta_size(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        maintainer = DeltaMaintainer(evaluator)
        materialized = evaluator.evaluate(sites_query)
        version = example2_instance.version
        _add_blogger(example2_instance, "d1", 20, "Rome", sites=("s1",))
        small = example2_instance.deltas_since(version)
        small_cost = maintainer.estimate_refresh_cost(materialized, small)
        for index in range(10):
            _add_blogger(example2_instance, f"d2_{index}", 21 + index, "Rome", sites=("s1", "s2"))
        large = example2_instance.deltas_since(version)
        assert maintainer.estimate_refresh_cost(materialized, large) > small_cost

    def test_missing_partial_is_infinitely_expensive(
        self, example2_instance, sites_query
    ):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        maintainer = DeltaMaintainer(evaluator)
        materialized = evaluator.evaluate(sites_query, materialize_partial=False)
        delta = example2_instance.deltas_since(example2_instance.version)
        assert maintainer.estimate_refresh_cost(materialized, delta) == float("inf")
