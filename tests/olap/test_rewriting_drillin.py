"""Tests for DRILL-IN rewriting (Algorithm 2, Definition 6, Figure 3)."""

import pytest

from repro.errors import MaterializationError, RewritingError
from repro.rdf import EX, Literal
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.olap.cube import Cube
from repro.olap.operations import DrillIn, DrillOut
from repro.olap.rewriting import OLAPRewriter, drill_in_from_partial

from tests.conftest import make_sites_query, make_views_query


class TestFigure3:
    def test_original_query_answer(self, figure3_instance, views_query):
        """ans(Q) of Figure 3: one row per URL, each with the video's views."""
        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        answer = evaluator.answer(views_query)
        cells = {row[0]: row[1] for row in answer.relation}
        assert cells == {Literal("URL1"): 100, Literal("URL2"): 100}

    def test_partial_result_of_figure3(self, figure3_instance, views_query):
        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        partial = evaluator.partial_result(views_query)
        assert partial.columns == ("x", "d2", "k", "v")
        assert len(partial) == 2
        assert partial.relation.distinct_values("d2") == {Literal("URL1"), Literal("URL2")}

    def test_algorithm2_reproduces_figure3_drill_in(self, figure3_instance, views_query):
        """ans(Q_DRILL-IN): ⟨URL1, firefox, n⟩ and ⟨URL2, chrome, n⟩."""
        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        partial = evaluator.partial_result(views_query)
        operation = DrillIn("d3")
        transformed = operation.apply(views_query)

        rewritten = drill_in_from_partial(
            partial, views_query, transformed, evaluator.bgp_evaluator
        )
        cells = {(row[0], row[1]): row[2] for row in rewritten.relation}
        assert cells == {
            (Literal("URL1"), Literal("firefox")): 100,
            (Literal("URL2"), Literal("chrome")): 100,
        }
        scratch = evaluator.answer(transformed)
        assert Cube(rewritten).same_cells(Cube(scratch))

    def test_drill_in_with_shared_url_and_browsers(self, figure3_instance, views_query):
        """Websites sharing a URL / browsers must not double-count the measure."""
        from repro.rdf import RDF, Triple

        # website3 has the same URL as website1 and also supports firefox.
        website3 = EX.term("website3")
        figure3_instance.add(Triple(website3, RDF.term("type"), EX.Website))
        figure3_instance.add(Triple(website3, EX.hasUrl, Literal("URL1")))
        figure3_instance.add(Triple(website3, EX.supportsBrowser, Literal("firefox")))
        figure3_instance.add(Triple(EX.term("video1"), EX.postedOn, website3))

        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        partial = evaluator.partial_result(views_query)
        operation = DrillIn("d3")
        transformed = operation.apply(views_query)
        rewritten = drill_in_from_partial(partial, views_query, transformed, evaluator.bgp_evaluator)
        scratch = evaluator.answer(transformed)
        assert Cube(rewritten).same_cells(Cube(scratch))
        cells = {(str(row[0]), str(row[1])): row[2] for row in rewritten.relation}
        assert cells[("URL1", "firefox")] == 100  # not 200


class TestDrillInOnPaperScenarios:
    def test_drill_in_after_drill_out_recovers_original_cube(self, example2_instance, sites_query):
        """DRILL-OUT dage then DRILL-IN dage gives back ans(Q) (Example 3)."""
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        coarse_query = DrillOut("dage").apply(sites_query)
        coarse = evaluator.evaluate(coarse_query)
        operation = DrillIn("dage")
        refined_query = operation.apply(coarse_query)
        rewritten = drill_in_from_partial(
            coarse.partial, coarse_query, refined_query, evaluator.bgp_evaluator
        )
        original = evaluator.answer(sites_query)
        # Same cells up to dimension order (dcity, dage) vs (dage, dcity).
        refined_cells = {frozenset(row[:-1]): row[-1] for row in rewritten.relation}
        original_cells = {frozenset(row[:-1]): row[-1] for row in original.relation}
        assert refined_cells == original_cells

    def test_drill_in_on_generated_videos(self, small_video_dataset):
        from repro.datagen.videos import views_per_url_query

        evaluator = AnalyticalQueryEvaluator(small_video_dataset.instance)
        query = views_per_url_query(small_video_dataset.schema)
        materialized = evaluator.evaluate(query)
        operation = DrillIn("d3")
        transformed = operation.apply(query)
        rewritten = drill_in_from_partial(
            materialized.partial, query, transformed, evaluator.bgp_evaluator
        )
        scratch = evaluator.answer(transformed)
        assert Cube(rewritten, transformed).same_cells(Cube(scratch, transformed))

    def test_drill_in_requires_a_new_dimension(self, figure3_instance, views_query):
        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        partial = evaluator.partial_result(views_query)
        with pytest.raises(RewritingError):
            drill_in_from_partial(partial, views_query, views_query, evaluator.bgp_evaluator)


class TestRewriterDispatch:
    def test_rewriter_uses_partial_and_instance(self, figure3_instance, views_query):
        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        materialized = evaluator.evaluate(views_query)
        rewriter = OLAPRewriter(evaluator.bgp_evaluator)
        result = rewriter.answer(materialized, DrillIn("d3"))
        assert result.used_partial and result.used_instance and not result.used_answer
        assert result.strategy == "drill-in/pres+aux"

    def test_rewriter_without_instance_access_fails(self, figure3_instance, views_query):
        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        materialized = evaluator.evaluate(views_query)
        rewriter = OLAPRewriter(instance_evaluator=None)
        with pytest.raises(RewritingError):
            rewriter.answer(materialized, DrillIn("d3"))

    def test_rewriter_requires_materialized_partial(self, figure3_instance, views_query):
        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        materialized = evaluator.evaluate(views_query, materialize_partial=False)
        rewriter = OLAPRewriter(evaluator.bgp_evaluator)
        with pytest.raises(MaterializationError):
            rewriter.answer(materialized, DrillIn("d3"))
