"""Tests for DRILL-OUT rewriting from pres(Q) (Algorithm 1, Example 5)."""

import pytest

from repro.errors import RewritingError
from repro.rdf import EX, Literal, RDF, Triple
from repro.algebra.relation import Relation
from repro.analytics.answer import CubeAnswer, PartialResult
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.olap.cube import Cube
from repro.olap.operations import DrillOut
from repro.olap.rewriting import (
    OLAPRewriter,
    drill_out_from_answer_naive,
    drill_out_from_partial,
)

from tests.conftest import make_sites_query, make_words_query

RDF_TYPE = RDF.term("type")


@pytest.fixture()
def example5_instance():
    """A concrete instance realizing Example 5's abstract tables.

    Fact ``x`` has one value ``a1`` for dimension d1 and *two* values
    (``an``, ``bn``) for dimension dn; fact ``y`` has ``a1`` and ``bn``.
    ``x`` has a single measure value 10 (m1), ``y`` has 20 (m2).
    """
    from repro.rdf import Graph

    graph = Graph(name="example5")
    x, y = EX.term("factX"), EX.term("factY")
    a1, an, bn = EX.term("a1"), EX.term("an"), EX.term("bn")
    for fact in (x, y):
        graph.add(Triple(fact, RDF_TYPE, EX.Fact))
    graph.add(Triple(x, EX.dim1, a1))
    graph.add(Triple(x, EX.dimN, an))
    graph.add(Triple(x, EX.dimN, bn))
    graph.add(Triple(y, EX.dim1, a1))
    graph.add(Triple(y, EX.dimN, bn))
    graph.add(Triple(x, EX.measure, Literal(10)))
    graph.add(Triple(y, EX.measure, Literal(20)))
    return graph


@pytest.fixture()
def example5_query():
    from repro.bgp.parser import parse_query
    from repro.analytics.query import AnalyticalQuery

    classifier = parse_query(
        "c(?x, ?d1, ?dn) :- ?x rdf:type ex:Fact, ?x ex:dim1 ?d1, ?x ex:dimN ?dn"
    )
    measure = parse_query("m(?x, ?v) :- ?x rdf:type ex:Fact, ?x ex:measure ?v")
    return AnalyticalQuery(classifier, measure, "sum", name="Q5")


class TestExample5:
    def test_algorithm1_gives_the_correct_answer(self, example5_instance, example5_query):
        evaluator = AnalyticalQueryEvaluator(example5_instance)
        partial = evaluator.partial_result(example5_query)
        operation = DrillOut("dn")
        transformed = operation.apply(example5_query)

        rewritten = drill_out_from_partial(partial, example5_query, transformed)
        cells = {row[0]: row[1] for row in rewritten.relation}
        # ⊕({m1, m2}) = 10 + 20 = 30: x's measure is counted once even though
        # x is multi-valued along the removed dimension.
        assert cells == {EX.term("a1"): 30}

        scratch = evaluator.answer(transformed)
        assert Cube(rewritten).same_cells(Cube(scratch))

    def test_naive_answer_based_drill_out_overcounts(self, example5_instance, example5_query):
        """Reproduces the erroneous (iv) table of Example 5: m1 is counted twice."""
        evaluator = AnalyticalQueryEvaluator(example5_instance)
        materialized = evaluator.evaluate(example5_query)
        transformed = DrillOut("dn").apply(example5_query)
        naive = drill_out_from_answer_naive(materialized.answer, transformed)
        cells = {row[0]: row[1] for row in naive.relation}
        assert cells == {EX.term("a1"): 40}  # 10 + 10 + 20: the double counting

    def test_naive_rewriting_is_rejected_for_non_distributive_aggregates(
        self, example5_instance, example5_query
    ):
        from repro.analytics.query import AnalyticalQuery

        query = AnalyticalQuery(
            example5_query.classifier, example5_query.measure, "avg", name="Q5avg"
        )
        evaluator = AnalyticalQueryEvaluator(example5_instance)
        materialized = evaluator.evaluate(query)
        transformed = DrillOut("dn").apply(query)
        with pytest.raises(RewritingError):
            drill_out_from_answer_naive(materialized.answer, transformed)


class TestAlgorithm1OnPaperExamples:
    @pytest.mark.parametrize("dimension", ["dage", "dcity"])
    def test_drill_out_on_example2(self, example2_instance, sites_query, dimension):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        partial = evaluator.partial_result(sites_query)
        operation = DrillOut(dimension)
        transformed = operation.apply(sites_query)
        rewritten = drill_out_from_partial(partial, sites_query, transformed)
        scratch = evaluator.answer(transformed)
        assert Cube(rewritten).same_cells(Cube(scratch))

    def test_drill_out_to_global_cube(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        partial = evaluator.partial_result(sites_query)
        transformed = DrillOut(["dage", "dcity"]).apply(sites_query)
        rewritten = drill_out_from_partial(partial, sites_query, transformed)
        assert len(rewritten) == 1
        # All five measure tuples (s1, s1, s2, s2, s3) are counted once each.
        assert rewritten.relation.rows[0] == (5,)

    def test_drill_out_with_average(self, example4_instance, words_query):
        evaluator = AnalyticalQueryEvaluator(example4_instance)
        partial = evaluator.partial_result(words_query)
        transformed = DrillOut("dage").apply(words_query)
        rewritten = drill_out_from_partial(partial, words_query, transformed)
        scratch = evaluator.answer(transformed)
        assert Cube(rewritten).same_cells(Cube(scratch))
        cells = {row[0]: row[1] for row in rewritten.relation}
        assert cells[EX.term("Madrid")] == pytest.approx((100 + 120 + 410) / 3)

    def test_drill_out_rejects_partial_missing_a_needed_dimension(self, example2_instance, sites_query):
        # A pres(Q) that was materialized without the dcity column cannot
        # answer a drill-out whose remaining dimension is dcity.
        broken = PartialResult(
            Relation(["x", "dage", "k", "vsite"], []),
            fact_column="x",
            dimension_columns=("dage",),
            key_column="k",
            measure_column="vsite",
        )
        transformed = DrillOut("dage").apply(sites_query)
        with pytest.raises(RewritingError):
            drill_out_from_partial(broken, sites_query, transformed)


class TestRewriterDispatch:
    def test_rewriter_uses_partial_for_drill_out(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        rewriter = OLAPRewriter(evaluator.bgp_evaluator)
        result = rewriter.answer(materialized, DrillOut("dage"))
        assert result.used_partial and not result.used_answer and not result.used_instance
        assert result.strategy == "drill-out/pres"

    def test_rewriter_on_generated_dataset(self, small_blogger_dataset):
        from repro.datagen.blogger import sites_per_blogger_query

        evaluator = AnalyticalQueryEvaluator(small_blogger_dataset.instance)
        query = sites_per_blogger_query(small_blogger_dataset.schema)
        materialized = evaluator.evaluate(query)
        rewriter = OLAPRewriter(evaluator.bgp_evaluator)
        operation = DrillOut("dage")
        result = rewriter.answer(materialized, operation)
        scratch = evaluator.answer(operation.apply(query))
        assert Cube(result.answer).same_cells(Cube(scratch))
