"""Unit tests for the Cube result abstraction."""

import pytest

from repro.errors import OLAPError
from repro.rdf import EX, Literal
from repro.algebra.relation import Relation
from repro.analytics.answer import CubeAnswer
from repro.olap.cube import Cube


@pytest.fixture()
def two_dim_cube() -> Cube:
    relation = Relation(
        ["dage", "dcity", "v"],
        [
            (Literal(28), EX.term("Madrid"), 3),
            (Literal(35), EX.term("NY"), 2),
        ],
    )
    return Cube(CubeAnswer(relation, ("dage", "dcity"), "v"))


class TestStructure:
    def test_dimensions_and_size(self, two_dim_cube):
        assert two_dim_cube.dimensions == ("dage", "dcity")
        assert two_dim_cube.measure_column == "v"
        assert two_dim_cube.arity == 2
        assert len(two_dim_cube) == 2

    def test_dimension_values(self, two_dim_cube):
        assert two_dim_cube.dimension_values("dage") == {Literal(28), Literal(35)}
        with pytest.raises(OLAPError):
            two_dim_cube.dimension_values("nope")

    def test_cells_mapping(self, two_dim_cube):
        cells = two_dim_cube.cells()
        assert cells[(Literal(28), EX.term("Madrid"))] == 3

    def test_iteration(self, two_dim_cube):
        assert len(list(two_dim_cube)) == 2


class TestCellAccess:
    def test_positional_access_with_terms(self, two_dim_cube):
        assert two_dim_cube.cell(Literal(28), EX.term("Madrid")) == 3

    def test_positional_access_with_python_values(self, two_dim_cube):
        # Python values are matched through the literal conversion.
        assert two_dim_cube.cell(28, "http://example.org/Madrid") == 3

    def test_named_access(self, two_dim_cube):
        assert two_dim_cube.cell(dage=Literal(35), dcity=EX.term("NY")) == 2

    def test_missing_cell_raises_and_get_defaults(self, two_dim_cube):
        with pytest.raises(OLAPError):
            two_dim_cube.cell(Literal(99), EX.term("Madrid"))
        assert two_dim_cube.get(Literal(99), EX.term("Madrid"), default=0) == 0

    def test_wrong_arity(self, two_dim_cube):
        with pytest.raises(OLAPError):
            two_dim_cube.cell(Literal(28))

    def test_mixed_positional_and_named_rejected(self, two_dim_cube):
        with pytest.raises(OLAPError):
            two_dim_cube.cell(Literal(28), dcity=EX.term("Madrid"))

    def test_unknown_or_missing_named_dimension(self, two_dim_cube):
        with pytest.raises(OLAPError):
            two_dim_cube.cell(dage=Literal(28), nope=1)
        with pytest.raises(OLAPError):
            two_dim_cube.cell(dage=Literal(28))


class TestComparison:
    def test_same_cells_across_value_representations(self, two_dim_cube):
        # The same cube with literal dimension values replaced by raw Python values.
        relation = Relation(
            ["dage", "dcity", "v"],
            [(28, "http://example.org/Madrid", 3), (35, "http://example.org/NY", 2)],
        )
        other = Cube(CubeAnswer(relation, ("dage", "dcity"), "v"))
        assert two_dim_cube.same_cells(other)

    def test_same_cells_tolerates_float_noise(self):
        a = Cube(CubeAnswer(Relation(["d", "v"], [("x", 1.0)]), ("d",), "v"))
        b = Cube(CubeAnswer(Relation(["d", "v"], [("x", 1.0 + 1e-12)]), ("d",), "v"))
        assert a.same_cells(b)

    def test_different_measures_not_equal(self, two_dim_cube):
        relation = Relation(
            ["dage", "dcity", "v"],
            [(Literal(28), EX.term("Madrid"), 4), (Literal(35), EX.term("NY"), 2)],
        )
        other = Cube(CubeAnswer(relation, ("dage", "dcity"), "v"))
        assert not two_dim_cube.same_cells(other)

    def test_different_dimensions_not_equal(self, two_dim_cube):
        relation = Relation(["dcity", "v"], [(EX.term("Madrid"), 3)])
        other = Cube(CubeAnswer(relation, ("dcity",), "v"))
        assert not two_dim_cube.same_cells(other)

    def test_missing_cell_not_equal(self, two_dim_cube):
        relation = Relation(["dage", "dcity", "v"], [(Literal(28), EX.term("Madrid"), 3)])
        other = Cube(CubeAnswer(relation, ("dage", "dcity"), "v"))
        assert not two_dim_cube.same_cells(other)


class TestDisplay:
    def test_to_text(self, two_dim_cube):
        text = two_dim_cube.to_text()
        assert "dage" in text and "Madrid" in text and "3" in text
