"""Unit tests for the OLAPSession top-level API."""

import pytest

from repro.errors import MaterializationError, OLAPError
from repro.rdf import EX, Literal
from repro.olap.operations import Dice, DrillIn, DrillOut, Slice
from repro.olap.session import OLAPSession

from tests.conftest import make_sites_query, make_views_query


class TestExecution:
    def test_execute_materializes_answer_and_partial(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        cube = session.execute(sites_query)
        assert len(cube) == 2
        materialized = session.materialized(sites_query)
        assert materialized.has_answer() and materialized.has_partial()
        assert session.executed_queries() == (sites_query.name,)

    def test_execute_without_partial(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance, materialize_partial=False)
        session.execute(sites_query)
        assert not session.materialized(sites_query).has_partial()

    def test_materialized_unknown_query(self, example2_instance):
        session = OLAPSession(example2_instance)
        with pytest.raises(MaterializationError):
            session.materialized("ghost")

    def test_forget_drops_materialization(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        session.forget(sites_query)
        with pytest.raises(MaterializationError):
            session.materialized(sites_query)

    def test_history_records_execution(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        assert len(session.history) == 1
        record = session.history[0]
        assert record.operation == "execute"
        assert record.output_cells == 2
        assert "Q_sites" in str(record)


class TestTransform:
    def test_transform_with_rewrite_strategy(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        cube = session.transform(sites_query, Slice("dage", Literal(35)), strategy="rewrite")
        assert len(cube) == 1
        assert session.history[-1].strategy.startswith("rewrite")

    def test_transform_with_scratch_strategy(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        cube = session.transform(sites_query, Slice("dage", Literal(35)), strategy="scratch")
        assert len(cube) == 1
        assert session.history[-1].strategy == "scratch"

    def test_both_strategies_agree(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        operation = DrillOut("dage")
        rewrite = session.transform(sites_query, operation, strategy="rewrite")
        scratch = session.transform(sites_query, operation, strategy="scratch")
        assert rewrite.same_cells(scratch)

    def test_auto_falls_back_to_scratch_when_partial_missing(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance, materialize_partial=False)
        session.execute(sites_query)
        cube = session.transform(sites_query, DrillOut("dage"), strategy="auto")
        assert len(cube) >= 1
        assert session.history[-1].strategy == "scratch"

    def test_rewrite_strategy_fails_when_partial_missing(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance, materialize_partial=False)
        session.execute(sites_query)
        with pytest.raises(MaterializationError):
            session.transform(sites_query, DrillOut("dage"), strategy="rewrite")

    def test_unknown_strategy(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        with pytest.raises(OLAPError):
            session.transform(sites_query, Slice("dage", Literal(35)), strategy="magic")

    def test_chained_navigation(self, example2_instance, sites_query):
        """Slice, then drill-out on the transformed query (cube chaining)."""
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        sliced = session.transform(sites_query, Slice("dage", Literal(35)), strategy="rewrite")
        assert sliced.query.name in session.executed_queries()
        # The sliced query's answer is materialized, so a further DICE on it
        # can again be answered by rewriting.
        rediced = session.transform(sliced.query.name, Dice({"dcity": [EX.term("NY")]}), strategy="rewrite")
        assert len(rediced) == 1

    def test_drill_in_through_session(self, figure3_instance, views_query):
        session = OLAPSession(figure3_instance)
        session.execute(views_query)
        cube = session.transform(views_query, DrillIn("d3"), strategy="rewrite")
        assert len(cube) == 2
        assert cube.cell(Literal("URL1"), Literal("firefox")) == 100

    def test_transform_without_materializing_result(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        cube = session.transform(sites_query, Slice("dage", Literal(35)), materialize=False)
        assert cube.query.name not in session.executed_queries()


class TestCompareStrategies:
    def test_comparison_structure(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        comparison = session.compare_strategies(sites_query, DrillOut("dage"))
        assert comparison["equal"] is True
        assert comparison["rewrite_seconds"] >= 0
        assert comparison["scratch_seconds"] >= 0
        assert comparison["speedup"] > 0
        assert comparison["strategy"].startswith("rewrite")

    def test_comparison_for_each_operation(self, small_video_dataset):
        from repro.datagen.videos import views_per_url_query

        session = OLAPSession(small_video_dataset.instance, small_video_dataset.schema)
        query = views_per_url_query(small_video_dataset.schema)
        session.execute(query)
        urls = sorted(
            session.materialized(query).answer.relation.distinct_values("d2"), key=repr
        )
        operations = [
            Slice("d2", urls[0]),
            Dice({"d2": urls[:3]}),
            DrillOut("d2"),
            DrillIn("d3"),
        ]
        for operation in operations:
            comparison = session.compare_strategies(query, operation)
            assert comparison["equal"], f"{operation.describe()} rewriting disagrees with scratch"


class TestLifecycle:
    """`close()` is idempotent and `__exit__` releases every pool, always."""

    def test_close_is_idempotent(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance, workers=2, parallel_backend="thread")
        session.execute(sites_query)
        session.close()
        assert session.closed
        session.close()  # second close must be a harmless no-op
        assert session.closed

    def test_exit_after_exception_leaves_no_live_pool(
        self, example2_instance, sites_query
    ):
        session = OLAPSession(example2_instance, workers=2, parallel_backend="thread")
        with pytest.raises(RuntimeError):
            with session:
                session.execute(sites_query)
                raise RuntimeError("body failed")
        assert session.closed
        assert session._parallel.closed
        assert session._parallel._thread_pool is None
        assert session._parallel._process_pool is None

    def test_closed_executor_refuses_dispatch(self, example2_instance, sites_query):
        from repro.errors import OLAPError

        session = OLAPSession(example2_instance, workers=2, parallel_backend="thread")
        session.close()
        with pytest.raises(OLAPError):
            session._parallel.evaluate(sites_query)

    def test_closed_session_still_executes_serially(
        self, example2_instance, sites_query
    ):
        session = OLAPSession(example2_instance, workers=2, parallel_backend="thread")
        session.close()
        cube = session.execute(sites_query)
        assert len(cube) > 0

    def test_serial_session_close_is_noop(self, example2_instance, sites_query):
        with OLAPSession(example2_instance) as session:
            session.execute(sites_query)
        assert session.closed
        session.close()
