"""Unit tests for the partial-aggregate merge algebra and the parallel executor.

The merge algebra is tested directly (empty shards, one-shard degeneracy,
AVG merge exactness, count_distinct dedup across shards, associativity and
commutativity); the executor is tested against the serial engine on the
paper's hand-built instances across backends, including the fallback paths
(non-mergeable aggregates, unpicklable Σ restrictions).
"""

import itertools

import pytest

from repro.errors import AggregationError
from repro.rdf import EX, Literal, RDF, Triple
from repro.rdf.terms import Variable
from repro.algebra.aggregates import (
    AggregateFunction,
    default_registry,
    get_aggregate,
    partial_aggregate,
)
from repro.algebra.grouping import (
    finalize_group_states,
    group_partial_states,
    merge_group_states,
)
from repro.algebra.relation import Relation
from repro.algebra.operators import project
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery, KEY_COLUMN
from repro.olap.cube import Cube
from repro.olap.parallel import KEY_STRIDE, ParallelExecutor, estimate_parallel_cost
from repro.olap.maintenance import estimate_scratch_cost

from tests.conftest import make_sites_query, make_words_query

ALL_AGGREGATES = ("count", "sum", "avg", "min", "max", "count_distinct")


def _aggregate_via_states(aggregate_name, partitions):
    """Aggregate a partitioned bag through make → merge → finalize."""
    partial = partial_aggregate(aggregate_name)
    aggregate = get_aggregate(aggregate_name)
    states = []
    for part in partitions:
        if not part:
            continue  # empty shards contribute no state
        values = part if partial.wants_raw else aggregate.prepare(part)
        states.append(partial.make(values))
    merged = states[0]
    for state in states[1:]:
        merged = partial.merge(merged, state)
    return partial.finalize(merged)


class TestPartialAggregateAlgebra:
    def test_every_standard_aggregate_has_a_partial_form(self):
        for name in ALL_AGGREGATES:
            assert partial_aggregate(name) is not None, name

    def test_merged_result_equals_serial_aggregate(self):
        bag = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        for name in ALL_AGGREGATES:
            serial = get_aggregate(name)(bag)
            merged = _aggregate_via_states(name, [bag[:3], bag[3:7], bag[7:]])
            assert merged == serial, name

    def test_empty_shards_do_not_perturb_the_merge(self):
        bag = [10, 20, 30]
        for name in ALL_AGGREGATES:
            serial = get_aggregate(name)(bag)
            merged = _aggregate_via_states(name, [[], bag, [], []])
            assert merged == serial, name

    def test_all_rows_in_one_shard_is_the_identity(self):
        bag = [7, 7, 2]
        for name in ALL_AGGREGATES:
            assert _aggregate_via_states(name, [bag]) == get_aggregate(name)(bag), name

    def test_avg_merge_is_exact_on_integer_bags(self):
        # Integer sums stay integers per shard, so the merged total — and
        # float(total)/n — is bit-identical to the serial average for every
        # split of the bag.
        bag = [1, 2, 2, 4, 10, 17, 3]
        serial = get_aggregate("avg")(bag)
        for cut_a in range(len(bag) + 1):
            for cut_b in range(cut_a, len(bag) + 1):
                merged = _aggregate_via_states("avg", [bag[:cut_a], bag[cut_a:cut_b], bag[cut_b:]])
                assert merged == serial

    def test_avg_state_is_a_sum_count_pair(self):
        partial = partial_aggregate("avg")
        assert partial.make([1, 2, 3]) == (6, 3)
        assert partial.merge((6, 3), (10, 1)) == (16, 4)
        assert partial.finalize((16, 4)) == 4.0

    def test_count_distinct_dedups_across_shards(self):
        # The same value appearing in several shards counts once.
        merged = _aggregate_via_states("count_distinct", [[1, 2], [2, 3], [3, 1]])
        assert merged == 3

    def test_count_distinct_finalize_decodes_each_member_once(self):
        partial = partial_aggregate("count_distinct")
        state = partial.merge(partial.make([0, 1]), partial.make([1, 2]))
        decoded = {0: Literal(28), 1: Literal(28.0), 2: Literal(35)}
        # ids 0 and 1 decode to comparable-equal values -> 2 distinct.
        assert partial.finalize(state, decode=decoded.__getitem__) == 2

    def test_merge_is_associative_and_commutative(self):
        bag = [5, 1, 5, 8, 2, 9, 9, 4]
        chunks = [bag[0:2], bag[2:4], bag[4:6], bag[6:8]]
        for name in ALL_AGGREGATES:
            partial = partial_aggregate(name)
            aggregate = get_aggregate(name)
            states = [
                partial.make(chunk if partial.wants_raw else aggregate.prepare(chunk))
                for chunk in chunks
            ]
            reference = None
            for ordering in itertools.permutations(range(len(states))):
                # left fold
                left = states[ordering[0]]
                for index in ordering[1:]:
                    left = partial.merge(left, states[index])
                # right fold (different association)
                right = states[ordering[-1]]
                for index in reversed(ordering[:-1]):
                    right = partial.merge(states[index], right)
                assert partial.finalize(left) == partial.finalize(right), name
                if reference is None:
                    reference = partial.finalize(left)
                assert partial.finalize(left) == reference, name

    def test_unregistered_aggregate_has_no_partial_form(self):
        registry = default_registry()
        name = "median_test_parallel"
        if name not in registry:
            registry.register(
                AggregateFunction(name, lambda values: sorted(values)[len(values) // 2], distributive=False)
            )
        assert partial_aggregate(name) is None


class TestGroupPartialStates:
    def _relation(self, rows):
        return Relation(("d", "v"), rows)

    def test_states_merge_to_serial_group_aggregate(self):
        from repro.algebra.grouping import group_aggregate

        rows = [("a", 1), ("a", 2), ("b", 5), ("a", 2), ("b", 5)]
        for name in ALL_AGGREGATES:
            serial = group_aggregate(self._relation(rows), by=("d",), measure="v", function=name)
            split = [self._relation(rows[:2]), self._relation(rows[2:])]
            merged = merge_group_states(
                (group_partial_states(part, by=("d",), measure="v", function=name) for part in split),
                name,
            )
            finalized = finalize_group_states(merged, name)
            assert sorted(finalized) == sorted(serial.rows), name

    def test_none_measures_are_filtered_like_serial_gamma(self):
        rows = [("a", None), ("a", 3), ("b", None)]
        states = group_partial_states(self._relation(rows), by=("d",), measure="v", function="count")
        assert states == {("a",): 1}

    def test_empty_relation_yields_no_states(self):
        states = group_partial_states(self._relation([]), by=("d",), measure="v", function="sum")
        assert states == {}
        assert merge_group_states([states, {}], "sum") == {}
        assert finalize_group_states({}, "sum") == []

    def test_non_mergeable_aggregate_raises(self):
        registry = default_registry()
        name = "median_test_parallel_grouping"
        if name not in registry:
            registry.register(
                AggregateFunction(name, lambda values: sorted(values)[len(values) // 2], distributive=False)
            )
        with pytest.raises(AggregationError):
            group_partial_states(self._relation([("a", 1)]), by=("d",), measure="v", function=name)


class TestGraphPartition:
    def test_shards_tile_the_id_space(self, example2_instance):
        shards = example2_instance.partition(3)
        assert len(shards) == 3
        assert shards[0].lo == 0
        for left, right in zip(shards, shards[1:]):
            assert left.hi == right.lo
        assert shards[-1].hi is None  # open-ended: later ids still map somewhere
        size = len(example2_instance.dictionary)
        for term_id in range(size + 5):
            owners = [shard for shard in shards if shard.contains(term_id)]
            assert len(owners) == 1

    def test_single_shard_covers_everything(self, example2_instance):
        (shard,) = example2_instance.partition(1)
        assert shard.lo == 0 and shard.hi is None

    def test_more_shards_than_terms_leaves_empty_shards(self, example2_instance):
        count = len(example2_instance.dictionary) + 10
        shards = example2_instance.partition(count)
        assert len(shards) == count
        empty = [shard for shard in shards if shard.hi is not None and shard.lo == shard.hi]
        assert empty  # surplus shards are empty intervals

    def test_invalid_count_raises(self, example2_instance):
        with pytest.raises(ValueError):
            example2_instance.partition(0)


def _executor(instance, **kwargs):
    return ParallelExecutor(AnalyticalQueryEvaluator(instance), **kwargs)


class TestParallelExecutor:
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    @pytest.mark.parametrize("workers,shards,backend", [
        (1, 1, "serial"),
        (1, 3, "serial"),
        (2, 3, "thread"),
        (4, 7, "thread"),
    ])
    def test_matches_serial_engine_on_example2(
        self, example2_instance, aggregate, workers, shards, backend
    ):
        query = make_sites_query(aggregate)
        oracle = Cube(AnalyticalQueryEvaluator(example2_instance).answer(query), query)
        with _executor(
            example2_instance, workers=workers, shard_count=shards, backend=backend
        ) as executor:
            cube = Cube(executor.answer(query), query)
        assert cube.same_cells(oracle)

    def test_example2_counts_are_the_paper_numbers(self, example2_instance):
        query = make_sites_query("count")
        with _executor(example2_instance, workers=2, shard_count=3, backend="thread") as executor:
            cube = Cube(executor.answer(query), query)
        assert cube.cell(28, "http://example.org/Madrid") == 3
        assert cube.cell(35, "http://example.org/NY") == 2

    def test_avg_example4_exact(self, example4_instance):
        query = make_words_query("avg")
        with _executor(example4_instance, workers=2, shard_count=5, backend="thread") as executor:
            cube = Cube(executor.answer(query), query)
        assert cube.cell(28, "http://example.org/Madrid") == 210.0
        assert cube.cell(35, "http://example.org/NY") == 570.0

    def test_pres_equals_serial_modulo_keys(self, example2_instance):
        query = make_sites_query("count")
        serial = AnalyticalQueryEvaluator(example2_instance)
        expected = serial.partial_result(query)
        with _executor(example2_instance, workers=2, shard_count=4, backend="thread") as executor:
            materialized = executor.evaluate(query, materialize_partial=True)
        partial = materialized.partial
        assert partial.columns == expected.columns
        keyless = [name for name in expected.columns if name != KEY_COLUMN]
        assert project(partial.storage, keyless).bag_equal(project(expected.storage, keyless))
        # keys are globally distinct across shards (disjoint strides)
        keys = partial.storage.column_values(KEY_COLUMN)
        assert len(keys) == len(set(keys))

    def test_shard_keys_use_disjoint_strides(self, example2_instance):
        query = make_sites_query("count")
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        shards = example2_instance.partition(2)
        rows_b, _ = evaluator.shard_results(query, shards[1], key_base=1 + KEY_STRIDE)
        keys = {row[-2] for row in rows_b}
        assert all(key > KEY_STRIDE for key in keys)

    def test_process_backend_matches_serial(self, example2_instance):
        query = make_sites_query("count")
        oracle = Cube(AnalyticalQueryEvaluator(example2_instance).answer(query), query)
        with _executor(example2_instance, workers=2, shard_count=3, backend="process") as executor:
            cube = Cube(executor.answer(query), query)
            assert executor.last_backend == "process"
        assert cube.same_cells(oracle)

    def test_process_pool_rebuilds_after_instance_mutation(self, example2_instance):
        query = make_sites_query("count")
        with _executor(example2_instance, workers=2, shard_count=2, backend="process") as executor:
            before = Cube(executor.answer(query), query)
            user9 = EX.term("user9")
            example2_instance.add(Triple(user9, RDF.term("type"), EX.Blogger))
            example2_instance.add(Triple(user9, EX.hasAge, Literal(35)))
            example2_instance.add(Triple(user9, EX.livesIn, EX.term("NY")))
            post = EX.term("p9")
            example2_instance.add(Triple(user9, EX.wrotePost, post))
            example2_instance.add(Triple(post, EX.postedOn, EX.term("s3")))
            oracle = Cube(AnalyticalQueryEvaluator(example2_instance).answer(query), query)
            after = Cube(executor.answer(query), query)
        assert after.same_cells(oracle)
        assert not after.same_cells(before)  # workers saw the update

    def test_unpicklable_sigma_falls_back_to_threads(self, example2_instance):
        from repro.analytics.sigma import DimensionRestriction

        base = make_sites_query("count")
        sigma = base.sigma.restrict("dage", DimensionRestriction.to_range(20, 30))
        query = base.with_sigma(sigma, name="Q_range")
        oracle = Cube(AnalyticalQueryEvaluator(example2_instance).answer(query), query)
        with _executor(example2_instance, workers=2, shard_count=2, backend="process") as executor:
            cube = Cube(executor.answer(query), query)
            assert executor.last_backend == "thread"
        assert cube.same_cells(oracle)

    def test_non_mergeable_aggregate_falls_back_to_serial(self, example2_instance):
        registry = default_registry()
        name = "median_test_parallel_executor"
        if name not in registry:
            registry.register(
                AggregateFunction(
                    name, lambda values: sorted(values)[len(values) // 2], distributive=False
                )
            )
        query = make_sites_query(name)
        oracle = Cube(AnalyticalQueryEvaluator(example2_instance).answer(query), query)
        with _executor(example2_instance, workers=2, shard_count=3, backend="thread") as executor:
            assert not executor.supports(query)
            cube = Cube(executor.answer(query), query)
            assert executor.last_backend == "fallback-serial"
        assert cube.same_cells(oracle)

    def test_sliced_query_matches_serial(self, example2_instance):
        from repro.olap.operations import Slice

        query = Slice("dcity", EX.term("NY")).apply(make_sites_query("count"))
        oracle = Cube(AnalyticalQueryEvaluator(example2_instance).answer(query), query)
        with _executor(example2_instance, workers=2, shard_count=3, backend="thread") as executor:
            cube = Cube(executor.answer(query), query)
        assert cube.same_cells(oracle)

    def test_invalid_configuration_raises(self, example2_instance):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        with pytest.raises(ValueError):
            ParallelExecutor(evaluator, workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(evaluator, workers=2, shard_count=0)
        with pytest.raises(ValueError):
            ParallelExecutor(evaluator, workers=2, backend="gpu")

    def test_decoded_evaluator_is_unsupported(self, example2_instance):
        evaluator = AnalyticalQueryEvaluator(example2_instance, id_space=False)
        executor = ParallelExecutor(evaluator, workers=2)
        assert not executor.supports(make_sites_query("count"))


class TestParallelCostModel:
    def test_dispatch_overhead_keeps_tiny_instances_serial(self, example2_instance):
        statistics = AnalyticalQueryEvaluator(example2_instance).bgp_evaluator.statistics
        query = make_sites_query("count")
        serial_cost = estimate_scratch_cost(statistics, query)
        parallel_cost = estimate_parallel_cost(statistics, query, workers=4, shard_count=4)
        assert parallel_cost > serial_cost

    def test_more_workers_price_lower_until_overhead_dominates(self, example2_instance):
        statistics = AnalyticalQueryEvaluator(example2_instance).bgp_evaluator.statistics
        query = make_sites_query("count")
        same_shards = [
            estimate_parallel_cost(statistics, query, workers=workers, shard_count=8)
            for workers in (1, 2, 4, 8)
        ]
        assert same_shards == sorted(same_shards, reverse=True)


class TestMixedTypeGroupSemantics:
    """Groups undefined under serial γ must stay undefined for every sharding."""

    def test_poisoned_group_is_dropped_for_every_split(self):
        from repro.algebra.grouping import POISONED_GROUP, group_aggregate

        rows = [("a", "abc"), ("a", 5), ("b", 7)]
        serial = group_aggregate(Relation(("d", "v"), rows), by=("d",), measure="v", function="sum")
        assert sorted(serial.rows) == [("b", 7)]  # group "a" is undefined and omitted
        for cut in range(len(rows) + 1):
            parts = [Relation(("d", "v"), rows[:cut]), Relation(("d", "v"), rows[cut:])]
            merged = merge_group_states(
                (group_partial_states(part, by=("d",), measure="v", function="sum") for part in parts),
                "sum",
            )
            assert sorted(finalize_group_states(merged, "sum")) == [("b", 7)], cut
            if 0 < cut < 3:  # the mixed group really was split across parts
                assert merged[("a",)] is POISONED_GROUP

    def test_poison_sentinel_survives_pickling_by_identity(self):
        import pickle

        from repro.algebra.grouping import POISONED_GROUP

        assert pickle.loads(pickle.dumps(POISONED_GROUP)) is POISONED_GROUP

    def test_executor_omits_undefined_groups_like_serial(self):
        # Two facts of one group, one with a non-numeric measure, forced
        # into different shards (one shard per term id): the parallel sum
        # must omit the group exactly as the serial engine does.
        from repro.bgp.query import BGPQuery
        from repro.rdf.triples import TriplePattern
        from repro.rdf import Graph

        graph = Graph()
        rdf_type = RDF.term("type")
        for name, value in (("f1", Literal("abc")), ("f2", Literal(5)), ("f3", Literal(9))):
            fact = EX.term(name)
            graph.add(Triple(fact, rdf_type, EX.Fact))
            graph.add(Triple(fact, EX.hasD, EX.term("d1" if name != "f3" else "d2")))
            graph.add(Triple(fact, EX.hasV, value))
        x, d, v = Variable("x"), Variable("d"), Variable("v")
        classifier = BGPQuery([x, d], [TriplePattern(x, rdf_type, EX.Fact), TriplePattern(x, EX.hasD, d)], name="c")
        measure = BGPQuery([x, v], [TriplePattern(x, EX.hasV, v)], name="m")
        query = AnalyticalQuery(classifier, measure, "sum", name="Q_mixed")

        serial = Cube(AnalyticalQueryEvaluator(graph).answer(query), query)
        assert len(serial) == 1  # only d2 survives
        with _executor(
            graph, workers=2, shard_count=len(graph.dictionary), backend="thread"
        ) as executor:
            cube = Cube(executor.answer(query), query)
        assert cube.same_cells(serial)


class TestErrorPropagation:
    def test_evaluation_errors_propagate_and_do_not_degrade_the_backend(self, example4_instance):
        # min over a group mixing strings and numbers raises TypeError on
        # every backend; the process pool must stay healthy afterwards.
        # (user1's 28/Madrid group already holds word counts 100 and 120.)
        post = EX.term("post_mixed")
        example4_instance.add(Triple(post, RDF.term("type"), EX.BlogPost))
        example4_instance.add(Triple(EX.term("user1"), EX.wrotePost, post))
        example4_instance.add(Triple(post, EX.hasWordCount, Literal("not a number")))
        query = make_words_query("min")
        with pytest.raises(TypeError):
            AnalyticalQueryEvaluator(example4_instance).answer(query)
        with _executor(example4_instance, workers=2, shard_count=2, backend="process") as executor:
            # user1's rows all live in one shard, so the TypeError is raised
            # inside a worker and must re-surface through future.result().
            with pytest.raises(TypeError):
                executor.answer(query)
            good = make_words_query("count")
            oracle = Cube(AnalyticalQueryEvaluator(example4_instance).answer(good), good)
            assert Cube(executor.answer(good, shard_count=2), good).same_cells(oracle)
            assert executor.last_backend == "process"  # not permanently degraded

    def test_evaluate_rejects_zero_shard_override(self, example2_instance):
        with _executor(example2_instance, workers=2, shard_count=2, backend="serial") as executor:
            with pytest.raises(ValueError):
                executor.evaluate(make_sites_query("count"), shard_count=0)


class TestExecutorStatsAndAttachMode:
    """Dispatch bookkeeping: no silent backend mixing, snapshot attach mode."""

    def test_dispatches_are_counted_per_backend(self, example2_instance):
        query = make_sites_query("count")
        with _executor(example2_instance, workers=1, shard_count=2, backend="serial") as executor:
            executor.answer(query)
            executor.answer(query)
            assert executor.stats.dispatches == {"serial": 2}
            assert executor.stats.total_dispatches == 2
            assert executor.stats.process_failures == 0
            assert executor.stats.fallbacks == []

    def test_unpicklable_query_fallback_is_recorded(self, example2_instance):
        from repro.analytics.sigma import DimensionRestriction

        base = make_sites_query("count")
        sigma = base.sigma.restrict("dage", DimensionRestriction.to_range(20, 30))
        query = base.with_sigma(sigma, name="Q_range_stats")
        with _executor(example2_instance, workers=2, shard_count=2, backend="process") as executor:
            executor.answer(query)
            assert executor.stats.dispatches.get("thread") == 1
            assert ("process", "thread", "query not picklable") in executor.stats.fallbacks
            assert "fallback" in executor.stats.summary()

    def test_unsupported_aggregate_fallback_is_recorded(self, example2_instance):
        registry = default_registry()
        name = "median_test_executor_stats"
        if name not in registry:
            registry.register(
                AggregateFunction(
                    name, lambda values: sorted(values)[len(values) // 2], distributive=False
                )
            )
        query = make_sites_query(name)
        with _executor(example2_instance, workers=2, shard_count=2, backend="thread") as executor:
            executor.answer(query)
            assert executor.stats.dispatches.get("fallback-serial") == 1
            assert any(reason == "unsupported aggregate" for _, _, reason in executor.stats.fallbacks)

    def test_broken_pool_failure_is_counted_and_surfaced(self, example2_instance, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        query = make_sites_query("count")
        with _executor(example2_instance, workers=2, shard_count=2, backend="process") as executor:
            def explode(*args, **kwargs):
                raise BrokenProcessPool("simulated pool death")

            monkeypatch.setattr(executor, "_dispatch_process", explode)
            oracle = Cube(AnalyticalQueryEvaluator(example2_instance).answer(query), query)
            cube = Cube(executor.answer(query), query)
            assert cube.same_cells(oracle)
            assert executor.last_backend == "thread"
            assert executor.stats.process_failures == 1
            assert ("process", "thread", "BrokenProcessPool") in executor.stats.fallbacks
            assert "BrokenProcessPool" in executor.stats.summary()

    def test_heap_graph_attach_mode_is_pickled(self, example2_instance):
        with _executor(example2_instance, workers=2, shard_count=2) as executor:
            assert executor.attach_mode == "pickled-graph"

    def test_snapshot_graph_attach_mode_is_mmap(self, example2_instance, tmp_path):
        pytest.importorskip("numpy")
        from repro.storage import load_snapshot, save_snapshot

        path = str(tmp_path / "example2.snap")
        save_snapshot(example2_instance, path)
        mapped = load_snapshot(path, mmap=True)
        query = make_sites_query("count")
        oracle = Cube(AnalyticalQueryEvaluator(example2_instance).answer(query), query)
        with _executor(mapped, workers=2, shard_count=3, backend="process") as executor:
            assert executor.attach_mode == "snapshot-mmap"
            cube = Cube(executor.answer(query), query)
            assert executor.last_backend == "process"
            assert executor.stats.dispatches == {"process": 1}
        assert cube.same_cells(oracle)

    def test_fallbacks_surface_in_plan_explain(self, example2_instance):
        from repro.analytics.sigma import DimensionRestriction
        from repro.olap.session import OLAPSession

        base = make_sites_query("count")
        sigma = base.sigma.restrict("dage", DimensionRestriction.to_range(20, 30))
        query = base.with_sigma(sigma, name="Q_range_explain")
        with OLAPSession(
            example2_instance, workers=2, shard_count=2, parallel_backend="process"
        ) as session:
            session.parallel.answer(query)  # triggers the thread downgrade
            from repro.olap.operations import DrillOut

            plain = make_sites_query("count")
            operation = DrillOut("dage")
            plan = session.planner.plan(plain, operation, operation.apply(plain))
            explanation = plan.explain()
            assert "pickled-graph attach" in explanation
            assert "fallback" in explanation

    def test_dispatch_cost_constant_tracks_attach_mode(self, example2_instance, tmp_path):
        pytest.importorskip("numpy")
        from repro.olap.parallel import (
            DISPATCH_SHARD_COST,
            MMAP_DISPATCH_SHARD_COST,
            dispatch_shard_cost,
        )
        from repro.storage import load_snapshot, save_snapshot

        assert dispatch_shard_cost(example2_instance) == DISPATCH_SHARD_COST
        path = str(tmp_path / "example2.snap")
        save_snapshot(example2_instance, path)
        mapped = load_snapshot(path, mmap=True)
        assert dispatch_shard_cost(mapped) == MMAP_DISPATCH_SHARD_COST
        assert MMAP_DISPATCH_SHARD_COST < DISPATCH_SHARD_COST

    def test_mmap_dispatch_prices_parallel_cheaper(self, example2_instance):
        statistics = AnalyticalQueryEvaluator(example2_instance).bgp_evaluator.statistics
        query = make_sites_query("count")
        from repro.olap.parallel import MMAP_DISPATCH_SHARD_COST

        pickled = estimate_parallel_cost(statistics, query, workers=2, shard_count=4)
        mmap = estimate_parallel_cost(
            statistics, query, workers=2, shard_count=4,
            dispatch_cost=MMAP_DISPATCH_SHARD_COST,
        )
        assert mmap < pickled
