"""Unit tests for the bounded result cache (:mod:`repro.olap.cache`)."""

import pytest

from repro.errors import MaterializationError
from repro.rdf import EX, Literal, RDF, Triple
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.olap.cache import ResultCache, canonical_core_key, canonical_query_key
from repro.olap.cube import Cube
from repro.olap.operations import Dice, DrillOut, Slice
from repro.olap.session import OLAPSession

from tests.conftest import make_sites_query

RDF_TYPE = RDF.term("type")


@pytest.fixture()
def materialized(example2_instance, sites_query):
    return AnalyticalQueryEvaluator(example2_instance).evaluate(sites_query)


def _variant(query, index):
    """Distinct canonical forms of the same core query (different slices)."""
    return Slice("dage", Literal(index)).apply(query)


def _evaluate(instance, query):
    return AnalyticalQueryEvaluator(instance).evaluate(query)


class TestCanonicalKeys:
    def test_name_does_not_matter(self, sites_query):
        renamed = sites_query.with_sigma(sites_query.sigma, name="completely_different")
        assert canonical_query_key(sites_query) == canonical_query_key(renamed)

    def test_sigma_changes_key_but_not_core(self, sites_query):
        sliced = Slice("dage", Literal(35)).apply(sites_query)
        assert canonical_query_key(sliced) != canonical_query_key(sites_query)
        assert canonical_core_key(sliced) == canonical_core_key(sites_query)

    def test_value_set_order_is_canonical(self, sites_query):
        forward = Dice({"dcity": [EX.term("Madrid"), EX.term("NY")]}).apply(sites_query)
        backward = Dice({"dcity": [EX.term("NY"), EX.term("Madrid")]}).apply(sites_query)
        assert canonical_query_key(forward) == canonical_query_key(backward)

    def test_navigation_path_does_not_matter(self, sites_query):
        """slice∘dice and dice∘slice reaching the same Σ share one key."""
        slice_op = Slice("dage", Literal(35))
        dice_op = Dice({"dcity": [EX.term("NY")]})
        one = dice_op.apply(slice_op.apply(sites_query))
        other = slice_op.apply(dice_op.apply(sites_query))
        assert canonical_query_key(one) == canonical_query_key(other)

    def test_range_dices_canonicalize_by_bounds(self, sites_query):
        one = Dice({"dage": (20, 40)}).apply(sites_query)
        other = Dice({"dage": (20, 40)}).apply(sites_query)
        assert canonical_query_key(one) == canonical_query_key(other)
        different = Dice({"dage": (20, 41)}).apply(sites_query)
        assert canonical_query_key(one) != canonical_query_key(different)


class TestLRUBehaviour:
    def test_eviction_order_is_lru(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=2)
        q1, q2, q3 = (_variant(sites_query, i) for i in (1, 2, 3))
        cache.put(q1, materialized, example2_instance)
        cache.put(q2, materialized, example2_instance)
        cache.put(q3, materialized, example2_instance)  # evicts q1
        assert cache.stats.evictions == 1
        assert cache.get(q1, example2_instance) is None
        assert cache.get(q2, example2_instance) is not None
        assert cache.get(q3, example2_instance) is not None

    def test_get_refreshes_recency(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=2)
        q1, q2, q3 = (_variant(sites_query, i) for i in (1, 2, 3))
        cache.put(q1, materialized, example2_instance)
        cache.put(q2, materialized, example2_instance)
        assert cache.get(q1, example2_instance) is not None  # q1 now most recent
        cache.put(q3, materialized, example2_instance)  # evicts q2, not q1
        assert cache.get(q1, example2_instance) is not None
        assert cache.get(q2, example2_instance) is None

    def test_capacity_zero_stores_nothing(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=0)
        cache.put(sites_query, materialized, example2_instance)
        assert len(cache) == 0
        assert cache.get(sites_query, example2_instance) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)


class TestPinning:
    def test_pinned_entry_survives_lru_pressure(
        self, example2_instance, sites_query, materialized
    ):
        cache = ResultCache(capacity=2)
        q1, q2, q3 = (_variant(sites_query, i) for i in (1, 2, 3))
        cache.put(q1, materialized, example2_instance)
        assert cache.pin(q1) is True
        cache.put(q2, materialized, example2_instance)
        cache.put(q3, materialized, example2_instance)  # would evict q1 (LRU)
        assert cache.get(q1, example2_instance) is not None  # pinned: survived
        assert cache.get(q2, example2_instance) is None  # evicted instead
        assert cache.stats.evictions == 1

    def test_unpin_restores_lru_eligibility(
        self, example2_instance, sites_query, materialized
    ):
        cache = ResultCache(capacity=2)
        q1, q2, q3 = (_variant(sites_query, i) for i in (1, 2, 3))
        cache.put(q1, materialized, example2_instance)
        cache.pin(q1)
        assert cache.unpin(q1) is True
        assert cache.unpin(q1) is False  # already unpinned
        cache.put(q2, materialized, example2_instance)
        cache.put(q3, materialized, example2_instance)
        assert cache.get(q1, example2_instance) is None  # LRU again

    def test_all_pinned_cache_may_exceed_capacity(
        self, example2_instance, sites_query, materialized
    ):
        cache = ResultCache(capacity=2)
        queries = [_variant(sites_query, i) for i in (1, 2, 3)]
        for query in queries:
            cache.pin(query)  # latent pin: protects the entry from insert on
            cache.put(query, materialized, example2_instance)
        assert len(cache) == 3  # over capacity rather than dropping pins
        assert cache.stats.evictions == 0

    def test_pin_by_key_before_insert(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=2)
        key = canonical_query_key(sites_query)
        assert cache.pin(key) is False  # no entry yet; pin is latent
        cache.put(sites_query, materialized, example2_instance)
        assert cache.is_pinned(sites_query)
        assert key in cache.pinned_keys()

    def test_pin_survives_re_put(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=2)
        cache.put(sites_query, materialized, example2_instance)
        cache.pin(sites_query)
        cache.put(sites_query, materialized, example2_instance)  # refreshed entry
        assert cache.is_pinned(sites_query)

    def test_explicit_evict_unpins_and_counts(
        self, example2_instance, sites_query, materialized
    ):
        cache = ResultCache(capacity=2)
        cache.put(sites_query, materialized, example2_instance)
        cache.pin(sites_query)
        assert cache.evict(sites_query) is True
        assert cache.evict(sites_query) is False  # already gone
        assert not cache.is_pinned(sites_query)
        assert cache.stats.evictions == 1

    def test_discard_drops_pin(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=2)
        cache.put(sites_query, materialized, example2_instance)
        cache.pin(sites_query)
        cache.discard(sites_query)
        assert not cache.is_pinned(sites_query)

    def test_clear_drops_pins(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=2)
        cache.put(sites_query, materialized, example2_instance)
        cache.pin(sites_query)
        cache.clear()
        assert cache.pinned_keys() == ()


class TestLazyMarks:
    def test_mark_without_entry_is_refused(self, example2_instance, sites_query):
        """Regression: a mark on a missing key must not be recorded.

        An orphaned mark would survive until a future entry landed under
        the same key and then force a refresh-on-read that skipped the
        refresh-vs-scratch pricing the mark is supposed to encode.
        """
        cache = ResultCache(capacity=2)
        assert cache.mark_lazy(sites_query) is False
        assert not cache.is_lazy(sites_query)
        assert cache.lazy_keys() == ()

    def test_mark_on_live_entry_sticks(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=2)
        cache.put(sites_query, materialized, example2_instance)
        assert cache.mark_lazy(sites_query) is True
        assert cache.is_lazy(sites_query)
        assert cache.unmark_lazy(sites_query) is True
        assert not cache.is_lazy(sites_query)

    def test_re_put_clears_the_mark(self, example2_instance, sites_query, materialized):
        """Regression: a new result supersedes the previous entry's mark —
        the mark priced the *old* entry's patch, not the new one's."""
        cache = ResultCache(capacity=2)
        cache.put(sites_query, materialized, example2_instance)
        cache.mark_lazy(sites_query)
        cache.put(sites_query, materialized, example2_instance)
        assert not cache.is_lazy(sites_query)

    def test_discard_and_evict_drop_the_mark(
        self, example2_instance, sites_query, materialized
    ):
        cache = ResultCache(capacity=2)
        cache.put(sites_query, materialized, example2_instance)
        cache.mark_lazy(sites_query)
        cache.discard(sites_query)
        assert not cache.is_lazy(sites_query)
        cache.put(sites_query, materialized, example2_instance)
        cache.mark_lazy(sites_query)
        cache.evict(sites_query)
        assert not cache.is_lazy(sites_query)


class TestAccounting:
    def test_hit_and_miss_counts(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=4)
        assert cache.get(sites_query, example2_instance) is None
        assert cache.stats.misses == 1
        cache.put(sites_query, materialized, example2_instance)
        assert cache.stats.puts == 1
        assert cache.get(sites_query, example2_instance) is not None
        assert cache.get(sites_query, example2_instance) is not None
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_answer_only_entry_is_a_miss_when_partial_required(
        self, example2_instance, sites_query
    ):
        """An entry the caller cannot use must not count as a hit nor gain recency."""
        from repro.analytics.answer import MaterializedQueryResults

        evaluated = AnalyticalQueryEvaluator(example2_instance).evaluate(sites_query)
        answer_only = MaterializedQueryResults(sites_query, answer=evaluated.answer)
        cache = ResultCache(capacity=2)
        other = _variant(sites_query, 1)
        cache.put(sites_query, answer_only, example2_instance)
        cache.put(other, evaluated, example2_instance)  # more recent than answer_only
        assert cache.get(sites_query, example2_instance, require_partial=True) is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1
        # Recency untouched: inserting a third entry evicts the unusable one.
        cache.put(_variant(sites_query, 2), evaluated, example2_instance)
        assert cache.get(sites_query, example2_instance) is None
        assert cache.get(other, example2_instance) is not None

    def test_execute_recomputes_when_cached_entry_lacks_partial(
        self, example2_instance, sites_query
    ):
        session = OLAPSession(example2_instance)
        session.execute(sites_query, materialize_partial=False)
        hits_before = session.cache.stats.hits
        session.execute(sites_query)  # needs pres(Q): must re-evaluate, not "hit"
        assert session.history[-1].strategy == "scratch"
        assert session.cache.stats.hits == hits_before
        assert session.materialized(sites_query).has_partial()

    def test_entry_hit_counter(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=4)
        cache.put(sites_query, materialized, example2_instance)
        entry = cache.get(sites_query, example2_instance)
        assert entry.hits == 1
        assert cache.get(sites_query, example2_instance).hits == 2


class TestGraphMutationInvalidation:
    def test_mutated_graph_never_serves_stale_entry(
        self, example2_instance, sites_query, materialized
    ):
        """A stale entry is not served — but with deltas available it is
        *retained* for refresh (a miss, not an invalidation)."""
        cache = ResultCache(capacity=4)
        cache.put(sites_query, materialized, example2_instance)
        example2_instance.add(Triple(EX.term("userX"), RDF_TYPE, EX.Blogger))
        assert cache.get(sites_query, example2_instance) is None
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 0
        assert cache.stale_entry(sites_query, example2_instance) is not None

    def test_mutation_past_the_log_window_invalidates(
        self, sites_query, materialized
    ):
        """When the change log cannot cover the gap, the entry is dropped."""
        from repro.rdf import Graph

        instance = Graph(change_log_limit=0)  # the log never answers
        instance.add(Triple(EX.term("user1"), RDF_TYPE, EX.Blogger))
        cache = ResultCache(capacity=4)
        cache.put(sites_query, materialized, instance)
        instance.add(Triple(EX.term("userX"), RDF_TYPE, EX.Blogger))
        assert cache.get(sites_query, instance) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        assert cache.stale_entry(sites_query, instance) is None

    def test_answer_only_stale_entry_is_invalidated(
        self, example2_instance, sites_query
    ):
        """Without pres(Q) there is nothing to patch: stale -> dropped."""
        from repro.analytics.answer import MaterializedQueryResults

        evaluated = _evaluate(example2_instance, sites_query)
        answer_only = MaterializedQueryResults(sites_query, answer=evaluated.answer)
        cache = ResultCache(capacity=4)
        cache.put(sites_query, answer_only, example2_instance)
        example2_instance.add(Triple(EX.term("userX"), RDF_TYPE, EX.Blogger))
        assert cache.get(sites_query, example2_instance) is None
        assert cache.stats.invalidations == 1

    def test_noop_mutation_keeps_entry(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=4)
        cache.put(sites_query, materialized, example2_instance)
        duplicate = next(iter(example2_instance))
        assert not example2_instance.add(duplicate)  # already present: no version bump
        assert cache.get(sites_query, example2_instance) is not None

    def test_session_never_serves_stale_results(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        example2_instance.add(Triple(EX.term("userY"), RDF_TYPE, EX.Blogger))
        with pytest.raises(MaterializationError):
            session.materialized(sites_query)

    def test_planner_answers_correctly_after_mutation(self, example2_instance, sites_query):
        """A transform after a mutation never serves the stale cube.

        (Pre-maintenance this was forced to fall back to scratch; with the
        change log the session may instead patch the stale origin and
        rewrite — either way the answer must reflect the mutation.)
        """
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        user5 = EX.term("user5")
        example2_instance.add(Triple(user5, RDF_TYPE, EX.Blogger))
        example2_instance.add(Triple(user5, EX.hasAge, Literal(35)))
        example2_instance.add(Triple(user5, EX.livesIn, EX.term("NY")))
        post = EX.term("p6")
        example2_instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
        example2_instance.add(Triple(user5, EX.wrotePost, post))
        example2_instance.add(Triple(post, EX.postedOn, EX.term("s3")))
        cube = session.transform(sites_query, Slice("dage", Literal(35)), strategy="plan")
        assert cube.cell(Literal(35), EX.term("NY")) == 3


class TestPersistenceWarmStart:
    def test_round_trip_warm_start(self, tmp_path, example2_instance, sites_query, materialized):
        store = str(tmp_path / "cache")
        first = ResultCache(capacity=4, store_dir=store)
        first.put(sites_query, materialized, example2_instance)

        second = ResultCache(capacity=4, store_dir=store)
        entry = second.get(sites_query, example2_instance)
        assert entry is not None
        assert entry.origin == "disk"
        assert second.stats.disk_hits == 1
        restored = Cube(entry.materialized.answer, sites_query)
        original = Cube(materialized.answer, sites_query)
        assert restored.same_cells(original)
        assert entry.materialized.has_partial()

    def test_disk_entry_for_other_instance_size_is_stale(
        self, tmp_path, example2_instance, sites_query, materialized
    ):
        store = str(tmp_path / "cache")
        ResultCache(capacity=4, store_dir=store).put(sites_query, materialized, example2_instance)
        example2_instance.add(Triple(EX.term("userZ"), RDF_TYPE, EX.Blogger))
        cold = ResultCache(capacity=4, store_dir=store)
        assert cold.get(sites_query, example2_instance) is None
        assert cold.stats.disk_hits == 0

    def test_disk_entry_rejected_when_content_changed_but_size_did_not(
        self, tmp_path, example2_instance, sites_query, materialized
    ):
        """Remove one triple, add another: same triple count, different
        content — the fingerprint must keep the disk entry from being
        resurrected (and from being re-stamped as valid)."""
        store = str(tmp_path / "cache")
        cache = ResultCache(capacity=4, store_dir=store)
        cache.put(sites_query, materialized, example2_instance)
        removed = Triple(EX.term("user1"), EX.hasAge, Literal(28))
        assert example2_instance.remove(removed)
        assert example2_instance.add(Triple(EX.term("userW"), RDF_TYPE, EX.Blogger))
        # In-memory entry: invalidated by the version stamp...
        assert cache.get(sites_query, example2_instance) is None
        # ...and the disk copy must not come back either, now or later.
        assert cache.get(sites_query, example2_instance) is None
        cold = ResultCache(capacity=4, store_dir=store)
        assert cold.get(sites_query, example2_instance) is None
        assert cold.stats.disk_hits == 0

    def test_opaque_predicate_keys_never_persist(
        self, tmp_path, example2_instance, sites_query
    ):
        """Identity-based (pred@...) canonical tokens are process-local: an
        id can be recycled across processes, so such entries must stay out
        of the disk store entirely."""
        import os

        from repro.analytics.sigma import DimensionRestriction

        predicate_query = sites_query.with_sigma(
            sites_query.sigma.restrict(
                "dage", DimensionRestriction.to_predicate(lambda value: True)
            )
        )
        store = str(tmp_path / "cache")
        cache = ResultCache(capacity=4, store_dir=store)
        cache.put(
            predicate_query, _evaluate(example2_instance, predicate_query), example2_instance
        )
        assert not os.path.isdir(store) or not os.listdir(store)
        # The in-memory entry still works as usual.
        assert cache.get(predicate_query, example2_instance) is not None

    def test_capacity_zero_still_writes_through(
        self, tmp_path, example2_instance, sites_query, materialized
    ):
        store = str(tmp_path / "cache")
        writer = ResultCache(capacity=0, store_dir=store)
        writer.put(sites_query, materialized, example2_instance)
        assert len(writer) == 0
        reader = ResultCache(capacity=4, store_dir=store)
        assert reader.get(sites_query, example2_instance) is not None

    def test_session_warm_start(self, tmp_path, example2_instance, sites_query):
        store = str(tmp_path / "session-cache")
        warm = OLAPSession(example2_instance, cache_dir=store)
        expected = warm.execute(sites_query)

        fresh = OLAPSession(example2_instance, cache_dir=store)
        cube = fresh.execute(sites_query)
        assert fresh.history[-1].strategy == "cache[disk]"
        assert cube.same_cells(expected)
        # The warm-started partial supports drill rewritings immediately.
        drilled = fresh.transform(sites_query, DrillOut("dage"), strategy="rewrite")
        assert drilled.cell(EX.term("Madrid")) == 3


class TestSessionCacheIntegration:
    def test_auto_falls_back_to_scratch_when_origin_evicted(
        self, example2_instance, sites_query
    ):
        """'Rewrite when possible, otherwise scratch' covers a missing origin
        entry too (capacity 0 here; LRU eviction and invalidation likewise)."""
        session = OLAPSession(example2_instance, cache_capacity=0)
        session.execute(sites_query)
        cube = session.transform(sites_query, Slice("dage", Literal(35)), strategy="auto")
        assert session.history[-1].strategy == "scratch"
        assert cube.cells() == {(Literal(35), EX.term("NY")): 2}

    def test_repeated_planned_operation_writes_disk_once(
        self, tmp_path, example2_instance, sites_query
    ):
        """A plan[cached] hit must not re-serialize the entry to disk."""
        import os

        store = str(tmp_path / "cache")
        session = OLAPSession(example2_instance, cache_dir=store)
        session.execute(sites_query)
        operation = Slice("dage", Literal(35))
        session.transform(sites_query, operation, strategy="plan")
        entry_dirs = sorted(os.listdir(store))
        stamps = {
            name: os.path.getmtime(os.path.join(store, name, "manifest.json"))
            for name in entry_dirs
        }
        session.transform(sites_query, operation, strategy="plan")  # cached
        assert session.history[-1].strategy == "plan[cached]"
        assert sorted(os.listdir(store)) == entry_dirs
        for name, stamp in stamps.items():
            assert os.path.getmtime(os.path.join(store, name, "manifest.json")) == stamp

    def test_forget_discards_cache_entry(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        assert len(session.cache) == 1
        session.forget(sites_query)
        assert len(session.cache) == 0

    def test_eviction_under_session_pressure(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance, cache_capacity=1)
        session.execute(sites_query)
        session.transform(sites_query, Slice("dage", Literal(35)), strategy="plan")
        # Capacity 1: materializing the slice evicted the root query.
        assert len(session.cache) == 1
        with pytest.raises(MaterializationError):
            session.materialized(sites_query)

    def test_entries_with_core(self, example2_instance, sites_query, materialized):
        cache = ResultCache(capacity=4)
        sliced = Slice("dage", Literal(35)).apply(sites_query)
        cache.put(sites_query, materialized, example2_instance)
        cache.put(sliced, _evaluate(example2_instance, sliced), example2_instance)
        assert len(list(cache.entries_with_core(sites_query))) == 2


def _grow_instance(instance, suffix="X"):
    """A small semantically meaningful update batch: one new NY blogger."""
    user = EX.term(f"user{suffix}")
    post = EX.term(f"post{suffix}")
    instance.add(Triple(user, RDF_TYPE, EX.Blogger))
    instance.add(Triple(user, EX.hasAge, Literal(35)))
    instance.add(Triple(user, EX.livesIn, EX.term("NY")))
    instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
    instance.add(Triple(user, EX.wrotePost, post))
    instance.add(Triple(post, EX.postedOn, EX.term("s1")))


class TestRefreshAccounting:
    """Accounting of the refresh path across mixed read/write workloads."""

    def test_cache_refresh_patches_and_restamps(
        self, example2_instance, sites_query, materialized
    ):
        from repro.analytics.evaluator import AnalyticalQueryEvaluator
        from repro.olap.maintenance import DeltaMaintainer

        cache = ResultCache(capacity=4)
        cache.put(sites_query, materialized, example2_instance)
        _grow_instance(example2_instance)
        maintainer = DeltaMaintainer(AnalyticalQueryEvaluator(example2_instance))
        entry = cache.refresh(sites_query, example2_instance, maintainer)
        assert entry is not None
        assert entry.graph_version == example2_instance.version
        assert cache.stats.refreshes == 1
        assert cache.stats.invalidations == 0
        # The refreshed entry is a plain hit from now on, and it is correct.
        assert cache.get(sites_query, example2_instance) is entry
        assert cache.stats.hits == 1
        refreshed = Cube(entry.materialized.answer, sites_query)
        scratch = Cube(
            AnalyticalQueryEvaluator(example2_instance).answer(sites_query), sites_query
        )
        assert refreshed.same_cells(scratch)

    def test_refresh_without_stale_entry_is_none(self, example2_instance, sites_query):
        from repro.analytics.evaluator import AnalyticalQueryEvaluator
        from repro.olap.maintenance import DeltaMaintainer

        cache = ResultCache(capacity=4)
        maintainer = DeltaMaintainer(AnalyticalQueryEvaluator(example2_instance))
        assert cache.refresh(sites_query, example2_instance, maintainer) is None
        assert cache.stats.refreshes == 0

    def test_session_mixed_workload_counts(self, example2_instance, sites_query):
        """execute / transform / update / re-execute: every counter lands.

        Row engine: the refresh-strategy assertion pins the uniform-cost
        ranking; columnar's cheaper scratch legitimately recomputes here.
        """
        session = OLAPSession(example2_instance, engine="rows")
        session.execute(sites_query)  # miss + put
        session.execute(sites_query)  # hit
        operation = Slice("dage", Literal(35))
        session.transform(sites_query, operation, strategy="plan")
        _grow_instance(example2_instance)
        cube = session.execute(sites_query)  # stale -> refresh
        assert session.history[-1].strategy == "refresh"
        stats = session.cache.stats
        assert stats.refreshes == 1
        assert stats.invalidations == 0
        assert stats.hits >= 1
        assert stats.misses >= 2
        from repro.analytics.evaluator import AnalyticalQueryEvaluator

        scratch = Cube(
            AnalyticalQueryEvaluator(example2_instance).answer(sites_query), sites_query
        )
        assert cube.same_cells(scratch)
        # The new blogger landed in the refreshed cube.
        assert cube.cell(Literal(35), EX.term("NY")) == 3

    def test_transform_after_update_prefers_patching_over_scratch(
        self, example2_instance, sites_query
    ):
        """After a small update batch the planner never falls back to scratch:
        it patches the stale origin (counted as a refresh) and answers the
        repeated operation from reuse candidates."""
        # Row engine: the "never scratch" assertion pins the uniform-cost
        # ranking; the columnar engine's 0.35x scratch multiplier can
        # legitimately price scratch under patching at this tiny scale.
        session = OLAPSession(example2_instance, engine="rows")
        session.execute(sites_query)
        operation = Slice("dage", Literal(35))
        session.transform(sites_query, operation, strategy="plan")
        _grow_instance(example2_instance)
        cube = session.transform(sites_query, operation, strategy="plan")
        assert session.history[-1].strategy != "plan[scratch]"
        assert session.cache.stats.refreshes >= 1
        from repro.analytics.evaluator import AnalyticalQueryEvaluator

        transformed = operation.apply(sites_query)
        scratch = Cube(
            AnalyticalQueryEvaluator(example2_instance).answer(transformed), transformed
        )
        assert cube.same_cells(scratch)

    def test_disk_loaded_entry_refreshes_correctly(
        self, tmp_path, example2_instance, sites_query
    ):
        """An origin="disk" entry (decoded relations) survives updates too.

        Row engine: the test must drive the *patch* path on the decoded
        entry; columnar's cheaper scratch pricing would recompute at this
        fixture scale instead of patching.
        """
        from repro.analytics.evaluator import AnalyticalQueryEvaluator

        store = str(tmp_path / "cache")
        warm = OLAPSession(example2_instance, cache_dir=store)
        warm.execute(sites_query)

        fresh = OLAPSession(example2_instance, cache_dir=store, engine="rows")
        fresh.execute(sites_query)
        assert fresh.history[-1].strategy == "cache[disk]"
        _grow_instance(example2_instance, suffix="Y")
        cube = fresh.execute(sites_query)
        assert fresh.history[-1].strategy == "refresh"
        assert fresh.cache.stats.refreshes == 1
        entry = fresh.cache.get(sites_query, example2_instance)
        assert entry is not None and entry.origin == "disk"
        scratch = Cube(
            AnalyticalQueryEvaluator(example2_instance).answer(sites_query), sites_query
        )
        assert cube.same_cells(scratch)
        # Drill rewritings work off the patched (decoded) partial result.
        drilled = fresh.transform(sites_query, DrillOut("dage"), strategy="rewrite")
        drilled_query = DrillOut("dage").apply(sites_query)
        drilled_scratch = Cube(
            AnalyticalQueryEvaluator(example2_instance).answer(drilled_query), drilled_query
        )
        assert drilled.same_cells(drilled_scratch)

    def test_capacity_zero_never_refreshes(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance, cache_capacity=0)
        session.execute(sites_query)
        _grow_instance(example2_instance, suffix="Z")
        session.execute(sites_query)
        assert session.history[-1].strategy == "scratch"
        assert session.cache.stats.refreshes == 0


class TestExecuteTimeVersionStamping:
    """Regression: entries must be stamped with the graph version observed at
    *evaluation* time, not whatever the version is when ``put`` finally runs.

    Pre-fix, ``put`` stamped ``graph.version`` at insert time, so a mutation
    interleaved between evaluation and insertion produced an entry stamped
    *newer* than the data it holds — it would then be served for the mutated
    graph even though it answers the old one.
    """

    def test_put_with_older_version_is_born_stale(
        self, example2_instance, sites_query, materialized
    ):
        cache = ResultCache(capacity=4)
        observed = example2_instance.version
        # The mutation lands between evaluation and insertion.
        example2_instance.add(Triple(EX.term("userX"), RDF_TYPE, EX.Blogger))
        entry = cache.put(
            sites_query, materialized, example2_instance, version=observed
        )
        assert entry.graph_version == observed
        # Born stale: never served as fresh for the mutated graph...
        assert cache.get(sites_query, example2_instance) is None
        # ...but retained for delta refresh like any other stale entry.
        assert cache.stale_entry(sites_query, example2_instance) is not None

    def test_put_default_still_stamps_insert_time(
        self, example2_instance, sites_query, materialized
    ):
        cache = ResultCache(capacity=4)
        entry = cache.put(sites_query, materialized, example2_instance)
        assert entry.graph_version == example2_instance.version
        assert cache.get(sites_query, example2_instance) is not None

    def test_born_stale_entry_never_persisted(
        self, tmp_path, example2_instance, sites_query, materialized
    ):
        store = str(tmp_path / "cache")
        cache = ResultCache(capacity=4, store_dir=store)
        observed = example2_instance.version
        example2_instance.add(Triple(EX.term("userX"), RDF_TYPE, EX.Blogger))
        cache.put(sites_query, materialized, example2_instance, version=observed)
        # A fresh cache over the same store must not warm-start from it.
        rewarmed = ResultCache(capacity=4, store_dir=store)
        assert rewarmed.get(sites_query, example2_instance) is None

    def test_session_stamps_before_evaluation(self, example2_instance, sites_query):
        """A mutation racing ``execute`` makes the entry stale, never wrong."""
        session = OLAPSession(example2_instance)
        original_evaluate = session.evaluator.evaluate

        def mutating_evaluate(query, **kwargs):
            result = original_evaluate(query, **kwargs)
            # Simulate a writer thread landing a triple mid-evaluation,
            # after the answer is computed but before the cache insert.
            example2_instance.add(
                Triple(EX.term("userRace"), RDF_TYPE, EX.Blogger)
            )
            return result

        session.evaluator.evaluate = mutating_evaluate
        session.execute(sites_query)
        session.evaluator.evaluate = original_evaluate
        # The entry was stamped with the pre-mutation version, so it is
        # already stale for the mutated graph — a lookup misses instead of
        # serving the pre-mutation cube as current.
        assert session.cache.get(sites_query, example2_instance) is None
        cube = session.execute(sites_query)
        scratch = Cube(
            AnalyticalQueryEvaluator(example2_instance).answer(sites_query),
            sites_query,
        )
        assert cube.same_cells(scratch)


class TestCacheThreadSafety:
    """Hammer the cache from many threads; the counters must stay coherent."""

    def test_concurrent_get_put_pin(self, example2_instance, sites_query):
        import threading

        evaluator = AnalyticalQueryEvaluator(example2_instance)
        variants = [_variant(sites_query, index) for index in range(8)]
        results = [evaluator.evaluate(variant) for variant in variants]
        cache = ResultCache(capacity=4)
        threads = 8
        rounds = 60
        barrier = threading.Barrier(threads)
        errors = []
        gets_per_thread = rounds * len(variants)

        def hammer(seed):
            try:
                barrier.wait()
                for round_index in range(rounds):
                    for index, variant in enumerate(variants):
                        if (round_index + seed + index) % 3 == 0:
                            cache.put(variant, results[index], example2_instance)
                        cache.get(variant, example2_instance)
                        if (round_index + seed + index) % 5 == 0:
                            cache.pin(variant)
                            cache.unpin(variant)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        workers = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert errors == []
        # Every get is accounted for exactly once: a hit or a miss.
        assert cache.stats.hits + cache.stats.misses == threads * gets_per_thread
        # All pins were released; LRU bookkeeping survived the hammering.
        assert cache.pinned_keys() == ()
        assert len(cache) <= 4
