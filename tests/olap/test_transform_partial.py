"""Unit tests for deriving pres(Q_T) from pres(Q) (OLAP chaining support)."""

import pytest

from repro.errors import RewritingError
from repro.rdf import EX, Literal
from repro.analytics import AnalyticalQueryEvaluator
from repro.olap import Cube, Dice, DrillIn, DrillOut, OLAPSession, Slice
from repro.olap.rewriting import OLAPRewriter, transform_partial

from tests.conftest import make_sites_query, make_views_query


class TestSliceDicePartial:
    def test_sliced_partial_is_the_sigma_selection(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        partial = evaluator.partial_result(sites_query)
        operation = Slice("dage", Literal(35))
        transformed = operation.apply(sites_query)
        derived = transform_partial(partial, sites_query, transformed, operation)
        # Exactly the rows of pres(Q) whose dage is 35, same layout.
        assert derived.columns == partial.columns
        assert all(row[1] == Literal(35) for row in derived.relation)
        assert len(derived) == 2  # user3 and user4 each contribute one measure tuple

    def test_derived_partial_matches_direct_materialization(self, example2_instance, sites_query):
        """pres(Q_DICE) derived from pres(Q) aggregates to the same cube as scratch."""
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        partial = evaluator.partial_result(sites_query)
        operation = Dice({"dcity": [EX.term("NY")]})
        transformed = operation.apply(sites_query)
        derived = transform_partial(partial, sites_query, transformed, operation)
        aggregated = evaluator.answer_from_partial(transformed, derived)
        assert Cube(aggregated).same_cells(Cube(evaluator.answer(transformed)))


class TestDrillOutPartial:
    def test_drilled_partial_is_projected_and_deduplicated(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        partial = evaluator.partial_result(sites_query)
        operation = DrillOut("dage")
        transformed = operation.apply(sites_query)
        derived = transform_partial(partial, sites_query, transformed, operation)
        assert derived.dimension_columns == ("dcity",)
        assert derived.columns == ("x", "dcity", "k", "vsite")
        # Keys are unique per (fact, remaining dims): duplicates introduced by
        # the removed dimension were eliminated.
        key_pairs = [(row[0], row[2]) for row in derived.relation]
        assert len(key_pairs) == len(set(key_pairs))
        aggregated = evaluator.answer_from_partial(transformed, derived)
        assert Cube(aggregated).same_cells(Cube(evaluator.answer(transformed)))


class TestDrillInPartial:
    def test_drilled_in_partial_matches_figure3(self, figure3_instance, views_query):
        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        partial = evaluator.partial_result(views_query)
        operation = DrillIn("d3")
        transformed = operation.apply(views_query)
        derived = transform_partial(
            partial, views_query, transformed, operation, evaluator.bgp_evaluator
        )
        assert derived.columns == ("x", "d2", "d3", "k", "v")
        rows = {(row[1], row[2]) for row in derived.relation}
        assert rows == {
            (Literal("URL1"), Literal("firefox")),
            (Literal("URL2"), Literal("chrome")),
        }

    def test_drill_in_partial_requires_instance_access(self, figure3_instance, views_query):
        evaluator = AnalyticalQueryEvaluator(figure3_instance)
        partial = evaluator.partial_result(views_query)
        operation = DrillIn("d3")
        transformed = operation.apply(views_query)
        with pytest.raises(RewritingError):
            transform_partial(partial, views_query, transformed, operation, None)


class TestRewriterAndSessionChaining:
    def test_rewriter_attaches_partial_on_request(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        rewriter = OLAPRewriter(evaluator.bgp_evaluator)
        without = rewriter.answer(materialized, DrillOut("dage"))
        with_partial = rewriter.answer(materialized, DrillOut("dage"), materialize_partial=True)
        assert without.partial is None
        assert with_partial.partial is not None
        assert with_partial.partial.dimension_columns == ("dcity",)

    def test_session_chains_three_rewritten_steps(self, small_video_dataset):
        from repro.datagen.videos import views_per_url_query

        session = OLAPSession(small_video_dataset.instance, small_video_dataset.schema)
        query = views_per_url_query(small_video_dataset.schema)
        session.execute(query)

        refined = session.transform(query, DrillIn("d3"), strategy="rewrite")
        browsers = sorted(refined.dimension_values("d3"), key=repr)
        diced = session.transform(refined.query.name, Dice({"d3": browsers[:2]}), strategy="rewrite")
        rolled = session.transform(diced.query.name, DrillOut("d2"), strategy="rewrite")

        # Every step after the initial execute stayed on the rewriting path.
        strategies = [record.strategy for record in session.history[1:]]
        assert all(strategy.startswith("rewrite") for strategy in strategies)

        # And the final cube agrees with evaluating the composed query from scratch.
        from repro.olap import compose

        composed = compose(query, [DrillIn("d3"), Dice({"d3": browsers[:2]}), DrillOut("d2")])
        evaluator = AnalyticalQueryEvaluator(small_video_dataset.instance)
        assert rolled.same_cells(Cube(evaluator.answer(composed), composed))
