"""Unit tests for the workload-driven materialization advisor."""

import pytest

from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap.advisor import AdvisorReport, WorkloadAdvisor, apply_recommendations
from repro.olap.cache import canonical_query_key
from repro.olap.operations import DrillOut, Slice
from repro.olap.session import OLAPSession


@pytest.fixture()
def dataset():
    return generic_dataset(GenericConfig(facts=120, dimensions=2, seed=7))


@pytest.fixture()
def query(dataset):
    return generic_query(dataset.config, aggregate="count")


def _profiled_session(dataset, query, **kwargs):
    """A session with a repeated-access history (the advisor's raw input)."""
    session = OLAPSession(dataset.instance, dataset.schema, **kwargs)
    session.execute(query)
    session.execute(query)  # repeat -> cache hit
    session.transform(query, DrillOut("d1"))
    session.transform(query, DrillOut("d1"))  # repeat
    session.transform(query, DrillOut("d0"))
    return session


class TestReport:
    def test_report_is_nonempty_and_ranked(self, dataset, query):
        session = _profiled_session(dataset, query)
        report = session.advise()
        assert report
        assert report.history_records == len(session.history)
        benefits = [rec.benefit for rec in report.materializations]
        assert benefits == sorted(benefits, reverse=True)
        assert report.cost_model.source == "fitted"

    def test_hot_keys_recommended_for_materialize_and_pin(self, dataset, query):
        session = _profiled_session(dataset, query)
        report = session.advise()
        keys = {rec.key for rec in report.materializations}
        assert canonical_query_key(query) in keys
        assert {rec.key for rec in report.pins} == keys

    def test_cold_history_still_recommends_top_key(self, dataset, query):
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)  # single access: below the hot threshold
        report = session.advise()
        assert len(report.materializations) == 1
        assert report.materializations[0].key == canonical_query_key(query)

    def test_empty_history_empty_report(self, dataset):
        session = OLAPSession(dataset.instance, dataset.schema)
        report = session.advise()
        assert not report
        assert len(report) == 0

    def test_top_limits_recommendations(self, dataset, query):
        session = _profiled_session(dataset, query)
        report = session.advise(top=1)
        assert len(report.materializations) == 1
        assert len(report.pins) == 1

    def test_evict_recommended_under_lru_pressure(self, dataset, query):
        session = _profiled_session(dataset, query, cache_capacity=3)
        # cache is full (3 entries) and at least one entry never served a hit
        report = WorkloadAdvisor(session).report()
        assert len(session.cache) >= session.cache.capacity
        evict_keys = {rec.key for rec in report.evictions}
        keep_keys = {rec.key for rec in report.pins}
        assert evict_keys.isdisjoint(keep_keys)

    def test_no_evictions_without_pressure(self, dataset, query):
        session = _profiled_session(dataset, query)  # default capacity 64
        report = session.advise()
        assert report.evictions == []

    def test_as_dict_and_describe(self, dataset, query):
        session = _profiled_session(dataset, query)
        report = session.advise()
        data = report.as_dict()
        assert data["history_records"] == len(session.history)
        assert all("query" not in rec for rec in data["recommendations"])
        text = report.describe()
        assert "materialize" in text
        assert "cost model" in text


class TestApply:
    def test_warm_starts_fresh_session(self, dataset, query):
        report = _profiled_session(dataset, query).advise()
        fresh = OLAPSession(
            dataset.instance, dataset.schema, cost_model=report.cost_model
        )
        counts = fresh.apply_recommendations(report)
        assert counts["materialized"] >= 1
        assert counts["pinned"] >= 1
        fresh.execute(query)
        assert fresh.history[-1].strategy.startswith("cache")
        assert fresh.cache.stats.hits >= 1

    def test_apply_is_idempotent_on_materialization(self, dataset, query):
        report = _profiled_session(dataset, query).advise()
        fresh = OLAPSession(dataset.instance, dataset.schema)
        first = fresh.apply_recommendations(report)
        second = fresh.apply_recommendations(report)
        assert first["materialized"] >= 1
        assert second["materialized"] == 0  # already cached
        assert second["pinned"] == first["pinned"]  # pins are re-asserted

    def test_pins_survive_lru_pressure_after_apply(self, dataset, query):
        report = _profiled_session(dataset, query).advise()
        fresh = OLAPSession(dataset.instance, dataset.schema, cache_capacity=2)
        apply_recommendations(fresh, report)
        pinned = fresh.cache.pinned_keys()
        assert pinned
        # flood the cache with one-off queries: pinned entries must survive
        for dimension in ("d0", "d1"):
            fresh.transform(query, DrillOut(dimension))
        for key in pinned:
            assert key in fresh.cache.keys()

    def test_evict_recommendations_drop_entries(self, dataset, query):
        session = _profiled_session(dataset, query, cache_capacity=3)
        report = session.advise()
        evicted_keys = {rec.key for rec in report.evictions}
        counts = session.apply_recommendations(report)
        assert counts["evicted"] == len(evicted_keys)
        for key in evicted_keys:
            assert key not in session.cache.keys()


class TestBenefit:
    def test_benefit_scales_with_accesses(self, dataset, query):
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        few = session.advise().materializations[0].benefit
        for _ in range(5):
            session.execute(query)
        many = session.advise().materializations[0].benefit
        assert many > few

    def test_report_type(self, dataset, query):
        report = _profiled_session(dataset, query).advise()
        assert isinstance(report, AdvisorReport)
        for rec in report.recommendations:
            assert rec.action in ("materialize", "pin", "evict")
            assert rec.benefit >= 0.0


class TestTimingSplit:
    def test_execute_has_no_plan_time(self, dataset, query):
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        record = session.history[-1]
        assert record.plan_seconds == 0.0
        assert record.execute_seconds == pytest.approx(record.seconds)

    def test_planned_transform_splits_timing(self, dataset, query):
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        session.transform(query, DrillOut("d1"), strategy="plan")
        record = session.history[-1]
        assert record.plan_seconds > 0.0
        assert record.execute_seconds > 0.0
        assert record.plan_seconds + record.execute_seconds == pytest.approx(
            record.seconds
        )

    def test_forced_strategies_have_no_plan_time(self, dataset, query):
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        for strategy in ("scratch", "rewrite", "auto"):
            session.transform(query, DrillOut("d1"), strategy=strategy)
            record = session.history[-1]
            assert record.plan_seconds == 0.0
            assert record.execute_seconds == pytest.approx(record.seconds)

    def test_cache_hit_sample_excludes_planning(self, dataset, query):
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        session.transform(query, DrillOut("d1"))
        session.transform(query, DrillOut("d1"))  # planner serves the cache
        record = session.history[-1]
        assert record.strategy == "plan[cached]"
        assert record.execute_seconds < record.seconds
