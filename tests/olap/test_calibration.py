"""Unit tests for the runtime-calibrated cost model."""

import pytest

from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap.calibration import (
    MAX_SCALE,
    MIN_SCALE,
    CalibrationSample,
    CostModel,
    fit_cost_model,
    fit_family_scales,
    samples_from_history,
    strategy_family,
)
from repro.olap.operations import DrillOut, Slice
from repro.olap.session import OLAPSession, TransformationRecord


@pytest.fixture()
def dataset():
    return generic_dataset(GenericConfig(facts=80, dimensions=2, seed=11))


def _record(strategy, cost, execute_seconds, plan_seconds=0.0):
    return TransformationRecord(
        query_name="Q",
        operation="op",
        strategy=strategy,
        seconds=plan_seconds + execute_seconds,
        input_rows=10,
        output_cells=5,
        details={"estimated_cost": cost},
        plan_seconds=plan_seconds,
        execute_seconds=execute_seconds,
    )


class TestCostModel:
    def test_defaults_match_static_constants(self):
        from repro.olap import maintenance, parallel, planner

        model = CostModel()
        assert model.select_row_cost == planner.SELECT_ROW_COST
        assert model.group_row_cost == planner.GROUP_ROW_COST
        assert model.join_row_cost == planner.JOIN_ROW_COST
        assert model.cached_cell_cost == planner.CACHED_CELL_COST
        assert model.base_cost == planner.BASE_COST
        assert model.delta_probe_cost == maintenance.DELTA_PROBE_COST
        assert model.pres_scan_cost == maintenance.PRES_SCAN_COST
        assert model.refresh_cell_cost == maintenance.REFRESH_CELL_COST
        assert model.merge_cell_cost == parallel.MERGE_CELL_COST
        assert model.dispatch_shard_cost == parallel.DISPATCH_SHARD_COST
        assert model.mmap_dispatch_shard_cost == parallel.MMAP_DISPATCH_SHARD_COST
        assert model.source == "static"

    def test_engine_multiplier(self):
        model = CostModel()
        assert model.engine_multiplier("rows") == 1.0
        assert model.engine_multiplier("columnar") == 0.35
        assert model.engine_multiplier("unknown") == 1.0

    def test_dispatch_cost_by_attach_mode(self):
        model = CostModel()

        class Heap:
            snapshot_path = None

        class Mapped:
            snapshot_path = "/tmp/snap"

        assert model.dispatch_cost(Heap()) == model.dispatch_shard_cost
        assert model.dispatch_cost(Mapped()) == model.mmap_dispatch_shard_cost

    def test_as_dict_round_trips_fields(self):
        data = CostModel().as_dict()
        assert data["source"] == "static"
        assert data["engine_multipliers"]["columnar"] == 0.35

    def test_describe(self):
        assert "static" in CostModel().describe()


class TestStrategyFamily:
    @pytest.mark.parametrize(
        "strategy, family",
        [
            ("scratch", "instance"),
            ("auto", "instance"),
            ("plan[scratch]", "instance"),
            ("parallel", "parallel"),
            ("plan[parallel]", "parallel"),
            ("rewrite[slice/ans]", "reuse"),
            ("plan[rewrite[drill-out/pres]]", "reuse"),
            ("plan[compat[sigma]]", "reuse"),
            ("cache", "cached"),
            ("cache[disk]", "cached"),
            ("plan[cached]", "cached"),
            ("refresh", "refresh"),
            ("plan[refresh-cached]", "refresh"),
            ("weird-label", None),
        ],
    )
    def test_families(self, strategy, family):
        assert strategy_family(strategy) == family


class TestSamples:
    def test_extracts_planned_records_only(self):
        history = [
            _record("plan[scratch]", 100.0, 0.01),
            TransformationRecord("Q", "execute", "scratch", 0.01, 10, 5),
        ]
        samples = samples_from_history(history)
        assert len(samples) == 1
        assert samples[0].family == "instance"

    def test_uses_execute_seconds_not_total(self):
        history = [_record("plan[cached]", 10.0, 0.001, plan_seconds=0.5)]
        (sample,) = samples_from_history(history)
        assert sample.seconds == pytest.approx(0.001)

    def test_skips_nonpositive_costs_and_times(self):
        history = [
            _record("plan[scratch]", 0.0, 0.01),
            _record("plan[scratch]", 100.0, 0.0),
        ]
        # zero execute time falls back to total seconds; both zero -> skipped
        history[1].execute_seconds = 0.0
        history[1].seconds = 0.0
        assert samples_from_history(history) == []


class TestFit:
    def test_no_samples_keeps_static_model(self):
        model = fit_cost_model([])
        assert model.source == "static"
        assert model.family_scales == {}

    def test_slower_reuse_scales_reuse_constants_up(self):
        # instance: 1000 rows-cost per 1ms -> slope 1e-6
        # reuse: same predicted cost, 4x the time -> scale 4
        history = [
            _record("plan[scratch]", 1000.0, 0.001),
            _record("plan[rewrite[slice/ans]]", 1000.0, 0.004),
        ]
        model = fit_cost_model(history)
        assert model.source == "fitted"
        assert model.family_scales["reuse"] == pytest.approx(4.0)
        assert model.select_row_cost == pytest.approx(4.0)
        assert model.group_row_cost == pytest.approx(8.0)
        # untouched families keep static constants
        assert model.merge_cell_cost == 0.5

    def test_scales_are_clamped(self):
        history = [
            _record("plan[scratch]", 1000.0, 0.001),
            _record("plan[cached]", 1000.0, 1000.0),
            _record("plan[rewrite[slice/ans]]", 1000.0, 1e-9),
        ]
        model = fit_cost_model(history)
        assert model.family_scales["cached"] == MAX_SCALE
        assert model.family_scales["reuse"] == MIN_SCALE

    def test_min_samples_threshold(self):
        history = [
            _record("plan[scratch]", 1000.0, 0.001),
            _record("plan[rewrite[slice/ans]]", 1000.0, 0.004),
        ]
        model = fit_cost_model(history, min_samples=2)
        assert "reuse" not in model.family_scales

    def test_instance_scale_lands_on_engine_multiplier(self):
        samples = [
            CalibrationSample("plan[cached]", "cached", 100.0, 0.001),
            CalibrationSample("plan[scratch]", "instance", 100.0, 0.002),
        ]
        scales = fit_family_scales(samples)
        assert scales["instance"] == pytest.approx(1.0)
        history = [
            _record("plan[cached]", 100.0, 0.001),
            _record("plan[scratch]", 100.0, 0.002),
        ]
        model = fit_cost_model(history, engine="rows")
        assert model.engine_multiplier("rows") == pytest.approx(1.0)

    def test_session_fit_produces_planner_compatible_model(self, dataset):
        from repro.olap.cube import Cube

        query = generic_query(dataset.config, aggregate="count")
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        session.transform(query, DrillOut("d1"))
        root = Cube(session.materialized(query).answer, query)
        value = sorted(root.dimension_values("d1"), key=repr)[0]
        session.transform(query, Slice("d1", value))
        fitted = session.fit_cost_model()
        assert fitted.samples >= 2
        replay = OLAPSession(dataset.instance, dataset.schema, cost_model=fitted)
        assert replay.cost_model is fitted
        assert replay.planner.cost_model is fitted
        cube = replay.execute(query)
        assert len(cube) > 0
