"""Tests for ROLL-UP along dimension hierarchies (extension beyond the paper)."""

import pytest

from repro.errors import OLAPError, RewritingError
from repro.rdf import EX, Literal, RDF, Triple
from repro.analytics import AnalyticalQueryEvaluator
from repro.olap import Cube, DimensionHierarchy, OLAPSession, roll_up_from_answer_naive, roll_up_from_partial

from tests.conftest import make_sites_query

RDF_TYPE = RDF.term("type")

CITY_TO_COUNTRY = DimensionHierarchy(
    {
        EX.term("Madrid"): "Spain",
        EX.term("NY"): "USA",
        EX.term("Kyoto"): "Japan",
    },
    name="city->country",
)

AGE_BANDS = DimensionHierarchy.banded(
    [(0, 29, "young"), (30, 120, "senior")], name="age bands"
)


class TestDimensionHierarchy:
    def test_explicit_mapping(self):
        assert CITY_TO_COUNTRY.parent(EX.term("Madrid")) == "Spain"

    def test_mapping_matches_via_comparable_values(self):
        hierarchy = DimensionHierarchy({28: "young"})
        assert hierarchy.parent(Literal(28)) == "young"

    def test_banded_hierarchy(self):
        assert AGE_BANDS.parent(Literal(28)) == "young"
        assert AGE_BANDS.parent(Literal(35)) == "senior"

    def test_banded_hierarchy_out_of_range(self):
        with pytest.raises(OLAPError):
            AGE_BANDS.parent(Literal(-5))

    def test_default_parent(self):
        hierarchy = DimensionHierarchy({EX.term("Madrid"): "Spain"}, default="Other")
        assert hierarchy.parent(EX.term("Lima")) == "Other"

    def test_missing_value_without_default_raises(self):
        with pytest.raises(OLAPError):
            CITY_TO_COUNTRY.parent(EX.term("Lima"))

    def test_from_pairs(self):
        hierarchy = DimensionHierarchy.from_pairs([("a", "letter"), ("1", "digit")])
        assert hierarchy.parent("1") == "digit"


class TestRollUpCorrectness:
    def test_roll_up_ages_to_bands_on_example2(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        partial = evaluator.partial_result(sites_query)
        rolled = roll_up_from_partial(partial, sites_query, "dage", AGE_BANDS)
        cells = {(str(row[0]), row[1].local_name()): row[2] for row in rolled.relation}
        # user1 (28, Madrid, 3 sites measures) -> young; user3+user4 (35, NY) -> senior.
        assert cells == {("young", "Madrid"): 3, ("senior", "NY"): 2}

    def test_roll_up_does_not_double_count_multivalued_dimensions(self):
        """A blogger living in two cities of the same country is counted once."""
        graph = self._two_city_instance()
        query = make_sites_query("sum")
        # Measure: count of posting sites -> use count to keep it simple.
        query = make_sites_query("count")
        evaluator = AnalyticalQueryEvaluator(graph)
        partial = evaluator.partial_result(query)
        hierarchy = DimensionHierarchy(
            {EX.term("Madrid"): "Spain", EX.term("Barcelona"): "Spain"}, name="city->country"
        )
        rolled = roll_up_from_partial(partial, query, "dcity", hierarchy)
        cells = {(row[0], row[1]): row[2] for row in rolled.relation}
        # user1 wrote 2 posts; living in Madrid AND Barcelona must not double it.
        assert cells == {(Literal(28), "Spain"): 2}

        naive = roll_up_from_answer_naive(
            evaluator.answer_from_partial(query, partial), query, "dcity", hierarchy
        )
        naive_cells = {(row[0], row[1]): row[2] for row in naive.relation}
        assert naive_cells == {(Literal(28), "Spain"): 4}  # the double-counting error

    @staticmethod
    def _two_city_instance():
        from repro.rdf import Graph

        graph = Graph()
        user = EX.term("user1")
        graph.add(Triple(user, RDF_TYPE, EX.Blogger))
        graph.add(Triple(user, EX.hasAge, Literal(28)))
        graph.add(Triple(user, EX.livesIn, EX.term("Madrid")))
        graph.add(Triple(user, EX.livesIn, EX.term("Barcelona")))
        for name, site in (("p1", "s1"), ("p2", "s2")):
            post = EX.term(name)
            graph.add(Triple(user, EX.wrotePost, post))
            graph.add(Triple(post, EX.postedOn, EX.term(site)))
        return graph

    def test_roll_up_with_average_recomputes_from_details(self, example4_instance, words_query=None):
        from tests.conftest import make_words_query

        query = make_words_query()
        evaluator = AnalyticalQueryEvaluator(example4_instance)
        partial = evaluator.partial_result(query)
        rolled = roll_up_from_partial(partial, query, "dage", AGE_BANDS)
        cells = {(str(row[0]), row[1].local_name()): row[2] for row in rolled.relation}
        assert cells[("young", "Madrid")] == pytest.approx((100 + 120 + 410) / 3)
        assert cells[("senior", "NY")] == pytest.approx(570.0)

    def test_roll_up_unknown_dimension(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        partial = evaluator.partial_result(sites_query)
        with pytest.raises(RewritingError):
            roll_up_from_partial(partial, sites_query, "dbrowser", AGE_BANDS)

    def test_naive_roll_up_requires_distributive_aggregate(self, example4_instance):
        from tests.conftest import make_words_query

        query = make_words_query()  # avg
        evaluator = AnalyticalQueryEvaluator(example4_instance)
        answer = evaluator.answer(query)
        with pytest.raises(RewritingError):
            roll_up_from_answer_naive(answer, query, "dage", AGE_BANDS)


class TestSessionRollUp:
    def test_session_roll_up_and_history(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        rolled = session.roll_up(sites_query, "dage", AGE_BANDS)
        assert isinstance(rolled, Cube)
        assert rolled.cell("young", EX.term("Madrid")) == 3
        # Roll-up goes through the standard transform/history path: the
        # record is a planned one (with the plan/execute split and the
        # estimated cost that feeds calibration), not a side channel.
        record = session.history[-1]
        assert record.strategy.startswith("plan[")
        assert "roll-up dage" in record.operation
        assert record.details.get("estimated_cost") is not None
        assert record.details.get("plan") is not None
        assert record.execute_seconds <= record.seconds
        # The rolled cube is materialized under its own canonical key, so it
        # can be served from cache and drilled back down.
        assert rolled.query.is_rolled()
        assert session.materialized(rolled.query) is not None

    def test_roll_up_records_feed_calibration_and_advisor(self, example2_instance, sites_query):
        """Roll-ups ride the planned history path, so their (estimated cost,
        execute seconds) pairs are calibration samples like any other
        transformation — the regression this guards: the legacy side-channel
        roll_up produced records the fit silently dropped."""
        from repro.olap.calibration import samples_from_history, strategy_family

        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        session.roll_up(sites_query, "dage", AGE_BANDS)
        rolled = session.history[-1]
        samples = samples_from_history(session.history)
        assert any(sample.strategy == rolled.strategy for sample in samples)
        assert strategy_family(rolled.strategy) in ("instance", "reuse", "cached")
        fitted = session.fit_cost_model()
        assert fitted.source == "fitted"
        assert fitted.samples >= len(samples) > 0
        # The advisor mines the same history without choking on rolled records.
        report = session.advise()
        assert report.cost_model.source == "fitted"

    def test_session_drill_down_restores_finer_cube(self, example2_instance, sites_query):
        session = OLAPSession(example2_instance)
        session.execute(sites_query)
        rolled = session.roll_up(sites_query, "dage", AGE_BANDS)
        drilled = session.drill_down(rolled.query)
        assert not drilled.query.is_rolled()
        base = Cube(session.materialized(sites_query).answer, sites_query)
        assert drilled.same_cells(base)
        assert session.history[-1].strategy.startswith("plan[")
        with pytest.raises(OLAPError):
            session.drill_down(sites_query)  # nothing to drill down from

    def test_session_roll_up_on_generated_dataset(self, small_blogger_dataset):
        from repro.datagen.blogger import sites_per_blogger_query

        session = OLAPSession(small_blogger_dataset.instance, small_blogger_dataset.schema)
        query = sites_per_blogger_query(small_blogger_dataset.schema)
        session.execute(query)
        hierarchy = DimensionHierarchy.banded(
            [(0, 29, "under-30"), (30, 49, "30-49"), (50, 200, "50+")], name="age bands"
        )
        rolled = session.roll_up(query, "dage", hierarchy)
        assert set(rolled.dimension_values("dage")) <= {"under-30", "30-49", "50+"}
        # Total mass is preserved for count: sum over rolled cube equals sum over original.
        original = Cube(session.materialized(query).answer, query)
        assert sum(rolled.cells().values()) == sum(original.cells().values())
