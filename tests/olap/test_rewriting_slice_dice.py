"""Tests for SLICE/DICE rewriting over ans(Q) (Definition 5, Proposition 1)."""

import pytest

from repro.errors import MaterializationError
from repro.rdf import EX, Literal
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.olap.cube import Cube
from repro.olap.operations import Dice, Slice
from repro.olap.rewriting import OLAPRewriter, slice_dice_from_answer

from tests.conftest import make_sites_query, make_words_query


class TestProposition1OnExamples:
    def test_example4_dice_on_answer(self, example4_instance, words_query):
        """Applying the 20≤age≤30 DICE on ans(Q) yields exactly {⟨28, Madrid, 210⟩}."""
        evaluator = AnalyticalQueryEvaluator(example4_instance)
        materialized = evaluator.evaluate(words_query)
        operation = Dice({"dage": (20, 30)})
        transformed = operation.apply(words_query)

        rewritten = slice_dice_from_answer(materialized.answer, transformed)
        cells = {(row[0], row[1]): row[2] for row in rewritten.relation}
        assert cells == {(Literal(28), EX.term("Madrid")): pytest.approx(210.0)}

        scratch = evaluator.answer(transformed)
        assert Cube(rewritten).same_cells(Cube(scratch))

    def test_example_slice_on_answer(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        operation = Slice("dage", Literal(35))
        transformed = operation.apply(sites_query)
        rewritten = slice_dice_from_answer(materialized.answer, transformed)
        assert {row[:2] for row in rewritten.relation} == {(Literal(35), EX.term("NY"))}
        assert Cube(rewritten).same_cells(Cube(evaluator.answer(transformed)))

    def test_dice_on_city_values(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        operation = Dice({"dcity": [EX.term("Madrid"), EX.term("Kyoto")]})
        transformed = operation.apply(sites_query)
        rewritten = slice_dice_from_answer(materialized.answer, transformed)
        assert {row[1] for row in rewritten.relation} == {EX.term("Madrid")}
        assert Cube(rewritten).same_cells(Cube(evaluator.answer(transformed)))

    def test_dice_selecting_nothing(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        operation = Dice({"dage": [Literal(99)]})
        transformed = operation.apply(sites_query)
        rewritten = slice_dice_from_answer(materialized.answer, transformed)
        assert len(rewritten) == 0
        assert len(evaluator.answer(transformed)) == 0

    def test_dice_on_both_dimensions(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        operation = Dice({"dage": (30, 40), "dcity": [EX.term("NY")]})
        transformed = operation.apply(sites_query)
        rewritten = slice_dice_from_answer(materialized.answer, transformed)
        assert Cube(rewritten).same_cells(Cube(evaluator.answer(transformed)))
        assert len(rewritten) == 1


class TestRewriterDispatch:
    def test_rewriter_uses_answer_for_slice(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        rewriter = OLAPRewriter(evaluator.bgp_evaluator)
        result = rewriter.answer(materialized, Slice("dage", Literal(28)))
        assert result.used_answer and not result.used_partial and not result.used_instance
        assert result.strategy == "slice-dice/ans"
        assert len(result.answer) == 1

    def test_rewriter_requires_materialized_answer(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        partial_only = evaluator.evaluate(sites_query)
        partial_only._answer = None  # simulate a session that only kept pres(Q)
        rewriter = OLAPRewriter(evaluator.bgp_evaluator)
        with pytest.raises(MaterializationError):
            rewriter.answer(partial_only, Slice("dage", Literal(28)))

    def test_rewriting_on_generated_dataset(self, small_blogger_dataset):
        from repro.datagen.blogger import sites_per_blogger_query

        evaluator = AnalyticalQueryEvaluator(small_blogger_dataset.instance)
        query = sites_per_blogger_query(small_blogger_dataset.schema)
        materialized = evaluator.evaluate(query)
        ages = sorted(materialized.answer.relation.distinct_values("dage"), key=repr)
        operation = Dice({"dage": ages[: max(1, len(ages) // 3)]})
        transformed = operation.apply(query)
        rewritten = slice_dice_from_answer(materialized.answer, transformed)
        scratch = evaluator.answer(transformed)
        assert Cube(rewritten, transformed).same_cells(Cube(scratch, transformed))
