"""Shared fixtures: small paper-faithful instances and generated datasets.

The fixtures fall into two groups:

* **hand-built instances** reproducing the concrete data of the paper's
  worked examples (Example 2, Example 4/5, Figure 3), used to check exact
  numbers;
* **generated datasets** (blogger, video, generic) at small sizes, used by
  integration and property-style tests.

Dataset fixtures are session-scoped: generation and instance
materialization dominate test runtime otherwise.
"""

from __future__ import annotations

import pytest

from repro.rdf import EX, Graph, IRI, Literal, RDF, Triple
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.query import BGPQuery
from repro.analytics import AnalyticalQuery, AnalyticalSchema
from repro.datagen import (
    BloggerConfig,
    GenericConfig,
    RetailConfig,
    VideoConfig,
    blogger_dataset,
    generic_dataset,
    retail_dataset,
    video_dataset,
)

RDF_TYPE = RDF.term("type")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/*.json cube fixtures from current results",
    )


@pytest.fixture()
def update_golden(request) -> bool:
    """True when the run should rewrite golden cube fixtures instead of checking them."""
    return request.config.getoption("--update-golden")


# ---------------------------------------------------------------------------
# hand-built paper examples
# ---------------------------------------------------------------------------


def _blogger_instance_core() -> Graph:
    """Bloggers/cities/ages shared by the Example-2 and Example-4 instances."""
    graph = Graph(name="paper_example")
    user1 = EX.term("user1")
    user3 = EX.term("user3")
    user4 = EX.term("user4")
    madrid = EX.term("Madrid")
    ny = EX.term("NY")
    for user in (user1, user3, user4):
        graph.add(Triple(user, RDF_TYPE, EX.Blogger))
    graph.add(Triple(user1, EX.hasAge, Literal(28)))
    graph.add(Triple(user3, EX.hasAge, Literal(35)))
    graph.add(Triple(user1, EX.livesIn, madrid))
    graph.add(Triple(user3, EX.livesIn, ny))
    return graph


@pytest.fixture()
def example2_instance() -> Graph:
    """The AnS instance behind Example 2 (count of sites by age and city).

    Classifier answer: {⟨user1, 28, Madrid⟩, ⟨user3, 35, NY⟩, ⟨user4, 35, NY⟩};
    measure bags: user1 ↦ {|s1, s1, s2|}, user3 ↦ {|s2|}, user4 ↦ {|s3|};
    answer: {⟨28, Madrid, 3⟩, ⟨35, NY, 2⟩}.
    """
    graph = _blogger_instance_core()
    user1 = EX.term("user1")
    user3 = EX.term("user3")
    user4 = EX.term("user4")
    graph.add(Triple(user4, EX.hasAge, Literal(35)))
    graph.add(Triple(user4, EX.livesIn, EX.term("NY")))

    posts = {
        "p1": (user1, "s1"),
        "p2": (user1, "s1"),
        "p3": (user1, "s2"),
        "p4": (user3, "s2"),
        "p5": (user4, "s3"),
    }
    for post_name, (author, site_name) in posts.items():
        post = EX.term(post_name)
        site = EX.term(site_name)
        graph.add(Triple(post, RDF_TYPE, EX.BlogPost))
        graph.add(Triple(author, EX.wrotePost, post))
        graph.add(Triple(post, EX.postedOn, site))
        graph.add(Triple(site, RDF_TYPE, EX.Site))
    return graph


@pytest.fixture()
def example4_instance() -> Graph:
    """The AnS instance behind Example 4 (average word count by age and city).

    Classifier answer: {⟨user1, 28, Madrid⟩, ⟨user3, 35, NY⟩, ⟨user4, 28, Madrid⟩};
    measure: {|⟨user1, 100⟩, ⟨user1, 120⟩, ⟨user3, 570⟩, ⟨user4, 410⟩|};
    answer: {⟨28, Madrid, 210⟩, ⟨35, NY, 570⟩}.
    """
    graph = _blogger_instance_core()
    user1 = EX.term("user1")
    user3 = EX.term("user3")
    user4 = EX.term("user4")
    graph.add(Triple(user4, EX.hasAge, Literal(28)))
    graph.add(Triple(user4, EX.livesIn, EX.term("Madrid")))

    posts = {
        "p1": (user1, 100),
        "p2": (user1, 120),
        "p3": (user3, 570),
        "p4": (user4, 410),
    }
    for post_name, (author, words) in posts.items():
        post = EX.term(post_name)
        graph.add(Triple(post, RDF_TYPE, EX.BlogPost))
        graph.add(Triple(author, EX.wrotePost, post))
        graph.add(Triple(post, EX.hasWordCount, Literal(words)))
    return graph


@pytest.fixture()
def figure3_instance() -> Graph:
    """The instance of Figure 3 (drill-in example): one video, two websites."""
    graph = Graph(name="figure3")
    video1 = EX.term("video1")
    website1 = EX.term("website1")
    website2 = EX.term("website2")
    graph.add(Triple(video1, RDF_TYPE, EX.Video))
    graph.add(Triple(video1, EX.viewNum, Literal(100)))
    graph.add(Triple(video1, EX.postedOn, website1))
    graph.add(Triple(video1, EX.postedOn, website2))
    graph.add(Triple(website1, RDF_TYPE, EX.Website))
    graph.add(Triple(website2, RDF_TYPE, EX.Website))
    graph.add(Triple(website1, EX.hasUrl, Literal("URL1")))
    graph.add(Triple(website2, EX.hasUrl, Literal("URL2")))
    graph.add(Triple(website1, EX.supportsBrowser, Literal("firefox")))
    graph.add(Triple(website2, EX.supportsBrowser, Literal("chrome")))
    return graph


# ---------------------------------------------------------------------------
# the paper's analytical queries (built directly, no schema required)
# ---------------------------------------------------------------------------


def make_sites_query(aggregate: str = "count") -> AnalyticalQuery:
    """Example 1's AnQ: number of posting sites per blogger, by age and city."""
    x, dage, dcity = Variable("x"), Variable("dage"), Variable("dcity")
    classifier = BGPQuery(
        [x, dage, dcity],
        [
            TriplePattern(x, RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.hasAge, dage),
            TriplePattern(x, EX.livesIn, dcity),
        ],
        name="c",
    )
    post, vsite = Variable("p"), Variable("vsite")
    measure = BGPQuery(
        [x, vsite],
        [
            TriplePattern(x, RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.wrotePost, post),
            TriplePattern(post, EX.postedOn, vsite),
        ],
        name="m",
    )
    return AnalyticalQuery(classifier, measure, aggregate, name="Q_sites")


def make_words_query(aggregate: str = "avg") -> AnalyticalQuery:
    """Example 4's AnQ: average word count per blogger, by age and city."""
    x, dage, dcity = Variable("x"), Variable("dage"), Variable("dcity")
    classifier = BGPQuery(
        [x, dage, dcity],
        [
            TriplePattern(x, RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.hasAge, dage),
            TriplePattern(x, EX.livesIn, dcity),
        ],
        name="c",
    )
    post, vwords = Variable("p"), Variable("vwords")
    measure = BGPQuery(
        [x, vwords],
        [
            TriplePattern(x, RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.wrotePost, post),
            TriplePattern(post, EX.hasWordCount, vwords),
        ],
        name="m",
    )
    return AnalyticalQuery(classifier, measure, aggregate, name="Q_words")


def make_views_query(aggregate: str = "sum") -> AnalyticalQuery:
    """Example 6's AnQ: views per URL, with the browser available for drill-in."""
    x, website, url, browser = Variable("x"), Variable("d1"), Variable("d2"), Variable("d3")
    classifier = BGPQuery(
        [x, url],
        [
            TriplePattern(x, RDF_TYPE, EX.Video),
            TriplePattern(x, EX.postedOn, website),
            TriplePattern(website, EX.hasUrl, url),
            TriplePattern(website, EX.supportsBrowser, browser),
        ],
        name="c",
    )
    views = Variable("v")
    measure = BGPQuery(
        [x, views],
        [TriplePattern(x, RDF_TYPE, EX.Video), TriplePattern(x, EX.viewNum, views)],
        name="m",
    )
    return AnalyticalQuery(classifier, measure, aggregate, name="Q_views")


@pytest.fixture()
def sites_query() -> AnalyticalQuery:
    return make_sites_query()


@pytest.fixture()
def words_query() -> AnalyticalQuery:
    return make_words_query()


@pytest.fixture()
def views_query() -> AnalyticalQuery:
    return make_views_query()


# ---------------------------------------------------------------------------
# generated datasets (session-scoped: expensive to build)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def small_blogger_dataset():
    return blogger_dataset(BloggerConfig(bloggers=80, seed=3))


@pytest.fixture(scope="session")
def small_video_dataset():
    return video_dataset(VideoConfig(videos=60, websites=15, seed=5))


@pytest.fixture(scope="session")
def small_retail_dataset():
    return retail_dataset(
        RetailConfig(sales=90, stores=8, products=16, cities=6, regions=3,
                     categories=6, departments=2, seed=17)
    )


@pytest.fixture(scope="session")
def small_generic_dataset():
    return generic_dataset(
        GenericConfig(facts=150, dimensions=3, values_per_dimension=1.5, measures_per_fact=2.0, seed=13)
    )
