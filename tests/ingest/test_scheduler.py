"""RefreshScheduler: per-entry eager / lazy / invalidate decisions."""

import pytest

from repro.datagen.generic import GenericConfig, generic_dataset
from repro.errors import IngestError
from repro.ingest import POLICIES, RefreshScheduler, StreamIngestor
from repro.olap.operations import Slice
from repro.olap.session import OLAPSession
from repro.rdf import Literal, RDF, Triple
from repro.rdf.graph import Graph
from repro.rdf.namespaces import EX

RDF_TYPE = RDF.term("type")


@pytest.fixture(scope="module")
def dataset():
    return generic_dataset(GenericConfig(facts=60, dimensions=2, seed=11))


@pytest.fixture()
def live(dataset):
    """A mutable copy of the dataset instance plus a session over it."""
    graph = dataset.instance.copy()
    session = OLAPSession(graph, dataset.schema)
    yield graph, session, dataset.query
    session.close()


def fact_triples(tag: str, index: int):
    fact = EX.term(f"fact/extra-{tag}-{index}")
    return [
        Triple(fact, RDF_TYPE, EX.term("Fact")),
        Triple(fact, EX.term("dim0"), EX.term("dimvalue/0/0")),
        Triple(fact, EX.term("dim1"), EX.term("dimvalue/1/1")),
        Triple(fact, EX.term("measure"), Literal(7 + index)),
    ]


def ingest_round(graph, scheduler, tag: str, rounds: int = 1):
    ingestor = StreamIngestor(graph, batch_size=4, scheduler=scheduler)
    for index in range(rounds):
        ingestor.ingest(add=fact_triples(tag, index))
        ingestor.pump()
    ingestor.drain()
    return ingestor


class TestPolicies:
    def test_eager_policy_refreshes_in_place(self, live):
        graph, session, query = live
        session.execute(query)
        scheduler = RefreshScheduler([session], policy="eager")
        ingest_round(graph, scheduler, "eager", rounds=2)
        assert scheduler.stats.eager_refreshes >= 1
        assert scheduler.stats.lazy_marks == 0
        # The cached entry is already fresh: the next read is a plain hit.
        session.execute(query)
        assert session.history[-1].strategy in ("cache", "cache[disk]")
        assert not session.cache.lazy_keys()

    def test_lazy_policy_defers_to_the_read_path(self, live):
        graph, session, query = live
        session.execute(query)
        scheduler = RefreshScheduler([session], policy="lazy")
        ingest_round(graph, scheduler, "lazy")
        assert scheduler.stats.lazy_marks == 1
        assert scheduler.stats.eager_refreshes == 0
        assert session.cache.lazy_keys()
        before = session.cache.stats.lazy_refreshes
        session.execute(query)
        assert session.history[-1].strategy == "refresh"
        assert session.cache.stats.lazy_refreshes == before + 1
        assert not session.cache.lazy_keys()  # consumed by the read

    def test_lazy_entry_is_not_rewalked(self, live):
        """A lazy-marked entry belongs to the read path; later batches skip it."""
        graph, session, query = live
        session.execute(query)
        scheduler = RefreshScheduler([session], policy="lazy")
        ingest_round(graph, scheduler, "first")
        walked = scheduler.stats.walked
        ingest_round(graph, scheduler, "second")
        assert scheduler.stats.walked == walked
        assert scheduler.stats.lazy_marks == 1

    def test_auto_policy_splits_by_hit_rate(self, live):
        graph, session, query = live
        cold_query = Slice("d0", EX.term("dimvalue/0/0")).apply(query)
        session.execute(query)
        session.execute(query)
        session.execute(query)  # hot: 2 hits after materialization
        session.execute(cold_query)  # cold: 0 hits
        scheduler = RefreshScheduler([session], policy="auto", hot_hits=2)
        ingest_round(graph, scheduler, "auto")
        actions = {d.query_name: d.action for d in scheduler.last_decisions}
        assert actions[query.name] == "eager"
        assert actions[cold_query.name] == "lazy"
        assert scheduler.stats.eager_refreshes == 1
        assert scheduler.stats.lazy_marks == 1

    def test_decisions_carry_the_pricing(self, live):
        graph, session, query = live
        session.execute(query)
        scheduler = RefreshScheduler([session], policy="eager")
        ingest_round(graph, scheduler, "price")
        decision = scheduler.last_decisions[0]
        assert decision.action == "eager"
        assert 0 < decision.refresh_cost < decision.scratch_cost
        assert decision.as_dict()["query_name"] == query.name

    def test_unprofitable_patch_is_invalidated(self, live):
        """When refresh prices >= scratch the entry is dropped, never marked."""
        graph, session, query = live
        session.execute(query)
        scheduler = RefreshScheduler([session], policy="lazy")
        # A huge delta relative to the cube: patching costs more than
        # recomputing, so every policy must invalidate.
        ingestor = StreamIngestor(graph, batch_size=100000, scheduler=scheduler)
        for index in range(400):
            ingestor.ingest(add=fact_triples("bulk", index))
        ingestor.drain()
        assert scheduler.stats.invalidations == 1
        assert scheduler.stats.lazy_marks == 0
        assert not session.cache.lazy_keys()
        assert session.cache.peek(query, graph) is None


class TestWalk:
    def test_fresh_entries_are_skipped(self, live):
        graph, session, query = live
        session.execute(query)
        scheduler = RefreshScheduler([session])
        scheduler.after_batch()
        assert scheduler.stats.walked == 0
        assert scheduler.last_decisions == ()

    def test_multiple_sessions_are_walked(self, dataset):
        graph = dataset.instance.copy()
        sessions = [OLAPSession(graph, dataset.schema) for _ in range(2)]
        for session in sessions:
            session.execute(dataset.query)
        scheduler = RefreshScheduler(sessions, policy="eager")
        ingest_round(graph, scheduler, "multi")
        assert scheduler.stats.eager_refreshes == 2
        for session in sessions:
            session.close()

    def test_register_and_unregister(self, live):
        graph, session, _ = live
        scheduler = RefreshScheduler()
        scheduler.register(session)
        scheduler.register(session)  # idempotent
        assert scheduler.sessions == (session,)
        scheduler.unregister(session)
        assert scheduler.sessions == ()

    def test_constructor_validation(self):
        with pytest.raises(IngestError):
            RefreshScheduler(policy="psychic")
        with pytest.raises(IngestError):
            RefreshScheduler(hot_hits=-1)
        assert set(POLICIES) == {"eager", "lazy", "auto"}
