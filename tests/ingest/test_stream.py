"""StreamIngestor: buffering, coalescing, backpressure, cadence, sinks."""

import asyncio

import pytest

from repro.errors import (
    IngestBackpressureError,
    IngestClosedError,
    IngestError,
    IngestPumpError,
    InvalidTripleError,
)
from repro.ingest import StreamIngestor
from repro.rdf import RDF, Triple
from repro.rdf.graph import Graph
from repro.rdf.namespaces import EX

RDF_TYPE = RDF.term("type")


def triple(index: int) -> Triple:
    return Triple(EX.term(f"s{index}"), EX.p, EX.o)


@pytest.fixture()
def graph():
    return Graph()


def run(coroutine):
    return asyncio.run(coroutine)


class TestBuffering:
    def test_submissions_buffer_until_flush(self, graph):
        ingestor = StreamIngestor(graph, batch_size=10)
        for index in range(4):
            ingestor.add(triple(index))
        assert ingestor.pending == 4
        assert len(graph) == 0
        batch = ingestor.flush(force=True)
        assert len(graph) == 4
        assert batch.reason == "forced"
        assert len(batch.adds) == 4 and not batch.removes
        assert ingestor.pending == 0

    def test_tuples_are_normalized_at_the_boundary(self, graph):
        ingestor = StreamIngestor(graph)
        ingestor.add((EX.a, EX.p, EX.b))
        ingestor.flush(force=True)
        assert Triple(EX.a, EX.p, EX.b) in graph

    def test_malformed_input_fails_its_producer_not_the_batch(self, graph):
        ingestor = StreamIngestor(graph)
        ingestor.add(triple(0))
        with pytest.raises(InvalidTripleError):
            ingestor.add("junk")
        with pytest.raises(InvalidTripleError):
            # Bad arity is rejected at submit time too.
            ingestor.add((EX.a, EX.p))
        batch = ingestor.flush(force=True)
        assert len(batch) == 1  # the good triple was untouched

    def test_flush_without_due_batch_is_none(self, graph):
        ingestor = StreamIngestor(graph, batch_size=10, max_batch_age=100.0)
        ingestor.add(triple(0))
        assert ingestor.flush() is None
        assert ingestor.pump() is None
        assert ingestor.pending == 1

    def test_batches_are_cut_oldest_first_and_bounded(self, graph):
        ingestor = StreamIngestor(graph, batch_size=3, max_batch_age=100.0)
        for index in range(7):
            ingestor.add(triple(index))
        first = ingestor.flush(force=True)
        assert [t.subject for t in first.adds] == [triple(i).subject for i in range(3)]
        assert ingestor.pending == 4
        batches = ingestor.drain()
        assert [len(b) for b in batches] == [3, 1]
        assert len(graph) == 7


class TestCoalescing:
    def test_add_then_remove_coalesces_to_one_remove(self, graph):
        ingestor = StreamIngestor(graph)
        ingestor.add(triple(0))
        ingestor.remove(triple(0))
        assert ingestor.pending == 1  # the later mutation stands alone
        assert ingestor.stats.superseded == 1
        assert ingestor.stats.coalesced == 1
        batch = ingestor.flush(force=True)
        assert batch.removes == (triple(0),) and not batch.adds
        assert graph.version == 0  # the remove was a no-op on the graph

    def test_remove_then_add_coalesces_to_one_add(self, graph):
        graph.add(triple(0))
        version = graph.version
        ingestor = StreamIngestor(graph)
        ingestor.remove(triple(0))
        ingestor.add(triple(0))
        ingestor.drain()
        assert triple(0) in graph
        assert graph.version == version  # the add was a no-op, no churn

    def test_add_then_remove_of_existing_triple_removes_it(self, graph):
        """Regression: cancelling the pair outright left the triple behind.

        A pending add of a triple the graph *already holds* is a no-op;
        the chasing remove must still win and take the triple out, exactly
        as sequential application would.
        """
        graph.add(triple(0))
        ingestor = StreamIngestor(graph)
        ingestor.add(triple(0))
        ingestor.remove(triple(0))
        ingestor.drain()
        assert triple(0) not in graph

    def test_remove_then_add_of_absent_triple_inserts_it(self, graph):
        """Regression: cancelling the pair outright never inserted it.

        A pending remove of a triple the graph *never held* is a no-op;
        the chasing add must still win and insert the triple, exactly as
        sequential application would.
        """
        ingestor = StreamIngestor(graph)
        ingestor.remove(triple(0))
        ingestor.add(triple(0))
        ingestor.drain()
        assert triple(0) in graph

    def test_duplicate_pending_mutation_is_absorbed(self, graph):
        ingestor = StreamIngestor(graph, capacity=2)
        for _ in range(5):
            ingestor.add(triple(0))
        assert ingestor.pending == 1
        assert ingestor.stats.duplicates == 4

    def test_net_effect_spans_would_be_batches(self, graph):
        """Opposite mutations coalesce even past one batch_size of distance."""
        ingestor = StreamIngestor(graph, batch_size=2, max_batch_age=100.0)
        ingestor.add(triple(0))
        ingestor.add(triple(1))
        ingestor.add(triple(2))
        ingestor.remove(triple(0))  # supersedes a mutation already batch-deep
        batches = ingestor.drain()
        assert triple(0) not in graph
        assert triple(1) in graph and triple(2) in graph
        # Three mutations ship (the no-op remove of t0 and both adds); only
        # the superseded add of t0 never reaches the graph.
        assert sum(len(b) for b in batches) == 3
        assert ingestor.stats.superseded == 1


class TestBackpressure:
    def test_sync_full_buffer_raises_typed_error(self, graph):
        ingestor = StreamIngestor(graph, capacity=2, batch_size=10)
        ingestor.add(triple(0))
        ingestor.add(triple(1))
        with pytest.raises(IngestBackpressureError) as excinfo:
            ingestor.add(triple(2))
        assert excinfo.value.pending == 2
        assert excinfo.value.capacity == 2
        assert ingestor.stats.rejected == 1
        # Space frees after a flush; the retry is admitted.
        ingestor.flush(force=True)
        ingestor.add(triple(2))
        assert ingestor.stats.accepted == 3

    def test_async_error_mode_raises_like_sync(self, graph):
        async def main():
            ingestor = StreamIngestor(graph, capacity=1, batch_size=10, backpressure="error")
            await ingestor.aadd(triple(0))
            with pytest.raises(IngestBackpressureError):
                await ingestor.aadd(triple(1))

        run(main())

    def test_async_block_mode_flushes_and_admits(self, graph):
        async def main():
            ingestor = StreamIngestor(graph, capacity=2, batch_size=10, backpressure="block")
            for index in range(6):  # 3x capacity: must block (flush) twice
                await ingestor.aadd(triple(index))
            assert ingestor.stats.rejected == 0
            assert ingestor.stats.blocked >= 2
            await ingestor.adrain()
            assert len(graph) == 6

        run(main())

    def test_blocked_producer_waits_for_the_pump(self, graph):
        async def main():
            ingestor = StreamIngestor(
                graph, capacity=2, batch_size=2, max_batch_age=0.005, backpressure="block"
            )
            ingestor.start_pump(interval=0.005)
            for index in range(10):
                await ingestor.aadd(triple(index))
            await ingestor.aclose()
            assert len(graph) == 10
            assert ingestor.stats.rejected == 0

        run(main())

    def test_pump_failure_wakes_blocked_producers(self, graph):
        """Regression: a flush failure killed the pump silently and left
        blocked producers waiting forever for a flush that never comes."""

        async def main():
            original_add = graph.add
            broken = [True]

            def flaky_add(t):
                if broken[0]:
                    raise RuntimeError("sink down")
                return original_add(t)

            graph.add = flaky_add
            ingestor = StreamIngestor(
                graph, capacity=2, batch_size=2, max_batch_age=0.005, backpressure="block"
            )
            ingestor.start_pump(interval=0.005)
            await ingestor.aadd(triple(0))
            await ingestor.aadd(triple(1))
            # Buffer full: this producer blocks; the pump's flush fails.
            with pytest.raises(IngestPumpError) as excinfo:
                await asyncio.wait_for(ingestor.aadd(triple(2)), timeout=5.0)
            assert isinstance(excinfo.value.cause, RuntimeError)
            assert ingestor.pump_error is excinfo.value.cause
            assert ingestor.pending == 2  # the failed batch was re-queued
            # Restarting the pump clears the error and resumes delivery.
            graph.add = original_add
            broken[0] = False
            ingestor.start_pump(interval=0.005)
            assert ingestor.pump_error is None
            await ingestor.aadd(triple(2))
            await ingestor.aclose()
            assert len(graph) == 3

        run(main())

    def test_superseding_does_not_consume_capacity(self, graph):
        ingestor = StreamIngestor(graph, capacity=1, batch_size=10)
        ingestor.add(triple(0))
        # Buffer is full, but the opposite mutation replaces the pending
        # slot in place — admitted without growth.
        ingestor.remove(triple(0))
        assert ingestor.pending == 1
        with pytest.raises(IngestBackpressureError):
            ingestor.add(triple(1))  # a *distinct* triple still backpressures
        ingestor.flush(force=True)
        ingestor.add(triple(1))
        assert ingestor.pending == 1


class TestCadence:
    def test_size_threshold_marks_due(self, graph):
        ingestor = StreamIngestor(graph, batch_size=2, max_batch_age=100.0)
        ingestor.add(triple(0))
        assert not ingestor.due()
        ingestor.add(triple(1))
        assert ingestor.due()
        batch = ingestor.pump()
        assert batch.reason == "size"

    def test_age_threshold_marks_due(self, graph):
        clock = [0.0]
        ingestor = StreamIngestor(
            graph, batch_size=100, max_batch_age=1.0, clock=lambda: clock[0]
        )
        ingestor.add(triple(0))
        assert not ingestor.due()
        clock[0] = 1.5
        assert ingestor.due()
        batch = ingestor.pump()
        assert batch.reason == "age"
        assert ingestor.stats.flush_reasons == {"age": 1}

    def test_age_clock_resets_after_flush(self, graph):
        clock = [0.0]
        ingestor = StreamIngestor(
            graph, batch_size=100, max_batch_age=1.0, clock=lambda: clock[0]
        )
        ingestor.add(triple(0))
        clock[0] = 1.5
        ingestor.pump()
        ingestor.add(triple(1))
        assert not ingestor.due()  # the new mutation's age starts now

    def test_cut_survivors_keep_their_age(self, graph):
        """A size-cut batch must not restart the leftovers' age clock."""
        clock = [0.0]
        ingestor = StreamIngestor(
            graph, batch_size=2, max_batch_age=1.0, clock=lambda: clock[0]
        )
        for index in range(3):
            ingestor.add(triple(index))  # all arrive at t=0
        clock[0] = 0.6
        batch = ingestor.pump()  # size-due: cuts two, one survives
        assert batch.reason == "size"
        assert ingestor.pending == 1
        clock[0] = 1.1  # the survivor is 1.1s old — past max_batch_age
        assert ingestor.due()
        assert ingestor.pump().reason == "age"

    def test_async_pump_enforces_age_cadence(self, graph):
        async def main():
            async with StreamIngestor(graph, batch_size=100, max_batch_age=0.01) as ingestor:
                ingestor.add(triple(0))
                await asyncio.sleep(0.1)
                assert len(graph) == 1  # the pump flushed on age alone

        run(main())


class TestLifecycle:
    def test_closed_ingestor_rejects_submissions(self, graph):
        ingestor = StreamIngestor(graph)
        ingestor.add(triple(0))
        ingestor.close()
        assert len(graph) == 1  # close drains
        assert ingestor.closed
        with pytest.raises(IngestClosedError):
            ingestor.add(triple(1))

    def test_context_manager_drains_on_exit(self, graph):
        with StreamIngestor(graph, batch_size=100) as ingestor:
            ingestor.add(triple(0))
        assert len(graph) == 1

    def test_aclose_is_idempotent(self, graph):
        async def main():
            ingestor = StreamIngestor(graph)
            await ingestor.aadd(triple(0))
            await ingestor.aclose()
            await ingestor.aclose()
            assert len(graph) == 1

        run(main())

    def test_constructor_validation(self, graph):
        with pytest.raises(IngestError):
            StreamIngestor(graph, capacity=0)
        with pytest.raises(IngestError):
            StreamIngestor(graph, batch_size=0)
        with pytest.raises(IngestError):
            StreamIngestor(graph, max_batch_age=-1)
        with pytest.raises(IngestError):
            StreamIngestor(graph, backpressure="shout")
        with pytest.raises(IngestError):
            StreamIngestor(object())

    def test_failed_graph_batch_rolls_back_and_counts(self, graph):
        """The bare-graph sink applies batches as atomically as the service."""
        ingestor = StreamIngestor(graph, batch_size=100)
        ingestor.add(triple(0))
        ingestor.add(triple(1))
        before = set(graph)
        original_add = graph.add
        calls = []

        def failing_add(t):
            if calls:
                raise RuntimeError("disk full")
            calls.append(t)
            return original_add(t)

        graph.add = failing_add
        with pytest.raises(RuntimeError):
            ingestor.flush(force=True)
        graph.add = original_add
        assert set(graph) == before
        assert ingestor.stats.failed_batches == 1
        assert ingestor.stats.batches == 0
        # The failed batch was re-queued: a retry delivers everything.
        assert ingestor.pending == 2
        ingestor.drain()
        assert triple(0) in graph and triple(1) in graph

    def test_failed_batch_requeues_oldest_first_and_newer_wins(self, graph):
        """Re-queued mutations keep their order; in-flight supersession sticks."""
        clock = [0.0]
        ingestor = StreamIngestor(
            graph, batch_size=2, max_batch_age=100.0, clock=lambda: clock[0]
        )
        ingestor.add(triple(0))
        ingestor.add(triple(1))

        def broken_add(t):
            raise RuntimeError("sink down")

        original_add = graph.add
        graph.add = broken_add
        with pytest.raises(RuntimeError):
            ingestor.flush(force=True)
        graph.add = original_add
        # While "in flight" nothing else arrived: the batch re-queued in
        # submission order and a later mutation of t0 supersedes in place.
        ingestor.remove(triple(0))
        batch = ingestor.flush(force=True)
        assert batch.removes == (triple(0),)
        assert batch.adds == (triple(1),)
        assert triple(0) not in graph and triple(1) in graph


class TestServiceSink:
    def test_sync_flush_refuses_service_sink(self, graph):
        async def main():
            from repro.serving import OLAPService

            async with OLAPService(graph) as service:
                ingestor = service.stream_ingestor()
                ingestor.add(triple(0))
                with pytest.raises(IngestError):
                    ingestor.flush()
                with pytest.raises(IngestError):
                    ingestor.close()
                await ingestor.aclose()

        run(main())

    def test_batches_publish_generations(self):
        async def main():
            from repro.serving import OLAPService

            base = Graph()
            base.add(triple(999))
            async with OLAPService(base) as service:
                ingestor = service.stream_ingestor(batch_size=3, max_batch_age=100.0)
                first_version = service.current_version
                for index in range(6):
                    await ingestor.aadd(triple(index))
                    await ingestor.aflush()  # flushes only when size-due
                assert ingestor.stats.batches == 2
                # Generation versions track the writer graph: +3 per batch.
                assert [b.version for b in ingestor.applied] == [
                    first_version + 3,
                    first_version + 6,
                ]
                assert service.current_version == first_version + 6
                await ingestor.aclose()
                assert len(service.generations.writer_graph) == 7

        run(main())

    def test_failed_service_batch_stays_atomic(self):
        async def main():
            from repro.serving import OLAPService

            base = Graph()
            base.add(triple(999))
            async with OLAPService(base) as service:
                ingestor = service.stream_ingestor(batch_size=100)
                await ingestor.aadd(triple(0))
                # Force malformed input past submit-time validation.
                ingestor._pending["junk"] = (1, 0.0)
                before = set(service.generations.writer_graph)
                with pytest.raises(Exception):
                    await ingestor.aflush(force=True)
                assert set(service.generations.writer_graph) == before
                assert ingestor.stats.failed_batches == 1
                assert service.stats.update_failures == 1
                assert ingestor.pending == 2  # the failed batch re-queued

        run(main())
