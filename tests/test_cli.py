"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        arguments = build_parser().parse_args(["generate", "blogger"])
        assert arguments.scenario == "blogger"
        assert arguments.size == 500

    def test_experiments_scale_choices(self):
        arguments = build_parser().parse_args(["experiments", "--scale", "tiny"])
        assert arguments.scale == "tiny"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--scale", "enormous"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerateCommand:
    @pytest.mark.parametrize("scenario", ["blogger", "video", "generic"])
    def test_generates_ntriples_files(self, scenario, tmp_path, capsys):
        base = str(tmp_path / "base.nt")
        instance = str(tmp_path / "instance.nt")
        exit_code = main(
            [
                "generate",
                scenario,
                "--size",
                "30",
                "--base-output",
                base,
                "--instance-output",
                instance,
            ]
        )
        assert exit_code == 0
        assert os.path.getsize(base) > 0
        assert os.path.getsize(instance) > 0
        output = capsys.readouterr().out
        assert "base graph" in output and "AnS instance" in output

    def test_generated_files_parse_back(self, tmp_path):
        from repro.rdf.ntriples import load_ntriples

        base = str(tmp_path / "base.nt")
        instance = str(tmp_path / "instance.nt")
        main(["generate", "video", "--size", "20", "--base-output", base, "--instance-output", instance])
        assert len(load_ntriples(base)) > 0
        assert len(load_ntriples(instance)) > 0


class TestDemoCommand:
    def test_demo_prints_comparison(self, capsys):
        exit_code = main(["demo", "--bloggers", "60"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "slice" in output and "drill-out" in output
        assert "equal=True" in output

    def test_demo_explain_prints_costed_plans(self, capsys):
        exit_code = main(["demo", "--bloggers", "60", "--explain"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "plan: slice dage" in output
        assert "plan: drill-out dage" in output
        assert "cost~" in output
        assert "scratch" in output
        assert "executed plan[" in output

    def test_demo_advise_prints_report_and_comparison(self, capsys):
        exit_code = main(["demo", "--bloggers", "60", "--advise"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "advisor report" in output
        assert "materialize" in output
        assert "pin" in output
        assert "cost model: fitted" in output
        assert "advised (warm + fitted)" in output
        assert "speedup" in output

    def test_demo_serve_runs_and_verifies(self, capsys):
        exit_code = main(["demo", "--serve"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "serving demo" in output
        assert "publish mode" in output
        assert "read latency p50" in output
        assert "verified 32/32" in output
