"""Unit tests for selection predicates."""

import pytest

from repro.errors import UnknownColumnError
from repro.algebra.expressions import (
    always_true,
    between,
    compare,
    comparable,
    conjunction,
    disjunction,
    equals,
    is_in,
    negation,
)
from repro.rdf import EX, Literal


class TestComparable:
    def test_literal_conversion(self):
        assert comparable(Literal(28)) == 28
        assert comparable(Literal("Madrid")) == "Madrid"
        assert comparable(Literal(2.5)) == pytest.approx(2.5)

    def test_iri_converts_to_string(self):
        assert comparable(EX.Madrid) == "http://example.org/Madrid"

    def test_plain_python_passthrough(self):
        assert comparable(42) == 42
        assert comparable("text") == "text"
        assert comparable(None) is None


class TestEquals:
    def test_matches_identical_terms(self):
        predicate = equals("dcity", EX.Madrid)
        assert predicate({"dcity": EX.Madrid})
        assert not predicate({"dcity": EX.Kyoto})

    def test_matches_literal_against_python_value(self):
        predicate = equals("dage", 28)
        assert predicate({"dage": Literal(28)})
        assert not predicate({"dage": Literal(29)})

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            equals("nope", 1)({"dage": 1})


class TestIsIn:
    def test_membership_with_terms_and_values(self):
        predicate = is_in("dcity", [EX.Madrid, EX.Kyoto])
        assert predicate({"dcity": EX.Madrid})
        assert not predicate({"dcity": EX.term("NY")})

    def test_membership_via_comparable_values(self):
        predicate = is_in("dage", [28, 35])
        assert predicate({"dage": Literal(35)})
        assert not predicate({"dage": Literal(40)})

    def test_empty_collection_matches_nothing(self):
        assert not is_in("dage", [])({"dage": 1})


class TestBetween:
    def test_inclusive_range(self):
        predicate = between("dage", 20, 30)
        assert predicate({"dage": Literal(20)})
        assert predicate({"dage": Literal(28)})
        assert predicate({"dage": Literal(30)})
        assert not predicate({"dage": Literal(31)})

    def test_exclusive_range(self):
        predicate = between("dage", 20, 30, inclusive=False)
        assert not predicate({"dage": Literal(20)})
        assert predicate({"dage": Literal(25)})

    def test_non_comparable_values_fail_closed(self):
        assert not between("dage", 20, 30)({"dage": Literal("unknown")})


class TestCompare:
    @pytest.mark.parametrize(
        "op, value, expected",
        [("==", 28, True), ("!=", 28, False), ("<", 30, True), ("<=", 28, True), (">", 28, False), (">=", 29, False)],
    )
    def test_operators(self, op, value, expected):
        assert compare("dage", op, value)({"dage": Literal(28)}) is expected

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            compare("dage", "<>", 1)

    def test_type_mismatch_fails_closed(self):
        assert not compare("dage", "<", 10)({"dage": Literal("abc")})


class TestCombinators:
    def test_conjunction_and_disjunction(self):
        young = compare("dage", "<", 30)
        in_madrid = equals("dcity", "Madrid")
        row_yes = {"dage": 25, "dcity": "Madrid"}
        row_no = {"dage": 40, "dcity": "Madrid"}
        assert conjunction(young, in_madrid)(row_yes)
        assert not conjunction(young, in_madrid)(row_no)
        assert disjunction(young, in_madrid)(row_no)
        assert not disjunction(young)(row_no)

    def test_empty_combinators(self):
        assert conjunction()({})
        assert not disjunction()({})

    def test_negation(self):
        assert negation(equals("a", 1))({"a": 2})
        assert not negation(equals("a", 1))({"a": 1})

    def test_always_true(self):
        assert always_true({})
