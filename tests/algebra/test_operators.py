"""Unit tests for the bag-relational algebra operators."""

import pytest

from repro.errors import SchemaMismatchError, UnknownColumnError
from repro.algebra.expressions import compare, equals
from repro.algebra.operators import (
    cross_product,
    dedup,
    difference_all,
    extend_column,
    join_on,
    natural_join,
    project,
    rename,
    select,
    union_all,
)
from repro.algebra.relation import Relation


@pytest.fixture()
def pres_like() -> Relation:
    """A pres(Q)-shaped relation with a multi-valued dimension (Example 5)."""
    return Relation(
        ["x", "d1", "dn", "k", "v"],
        [
            ("x", "a1", "an", 1, 10),
            ("x", "a1", "bn", 1, 10),
            ("y", "a1", "bn", 2, 20),
        ],
    )


class TestSelect:
    def test_select_keeps_matching_rows(self, pres_like):
        result = select(pres_like, equals("dn", "bn"))
        assert len(result) == 2
        assert all(row[2] == "bn" for row in result)

    def test_select_preserves_schema_and_duplicates(self):
        relation = Relation(["a"], [(1,), (1,), (2,)])
        result = select(relation, compare("a", "<", 2))
        assert result.columns == ("a",)
        assert result.rows == [(1,), (1,)]

    def test_select_empty_result(self, pres_like):
        assert len(select(pres_like, equals("x", "nobody"))) == 0


class TestProject:
    def test_project_keeps_duplicates(self, pres_like):
        result = project(pres_like, ["x", "k", "v"])
        assert result.columns == ("x", "k", "v")
        assert result.to_multiset() == {("x", 1, 10): 2, ("y", 2, 20): 1}

    def test_project_reorders_columns(self, pres_like):
        result = project(pres_like, ["v", "x"])
        assert result.columns == ("v", "x")
        assert result.rows[0] == (10, "x")

    def test_project_unknown_column(self, pres_like):
        with pytest.raises(UnknownColumnError):
            project(pres_like, ["nope"])


class TestDedup:
    def test_dedup_removes_duplicates_preserving_order(self):
        relation = Relation(["a"], [(2,), (1,), (2,), (1,)])
        assert dedup(relation).rows == [(2,), (1,)]

    def test_dedup_is_the_delta_step_of_algorithm1(self, pres_like):
        projected = project(pres_like, ["x", "d1", "k", "v"])
        deduplicated = dedup(projected)
        assert deduplicated.to_multiset() == {("x", "a1", 1, 10): 1, ("y", "a1", 2, 20): 1}


class TestRename:
    def test_rename(self, pres_like):
        renamed = rename(pres_like, {"v": "measure"})
        assert renamed.columns == ("x", "d1", "dn", "k", "measure")

    def test_rename_unknown_column(self, pres_like):
        with pytest.raises(UnknownColumnError):
            rename(pres_like, {"nope": "other"})


class TestJoins:
    def test_natural_join_on_shared_column(self):
        classifier = Relation(["x", "dage"], [("u1", 28), ("u2", 35)])
        measure = Relation(["x", "v"], [("u1", 100), ("u1", 120), ("u3", 5)])
        joined = natural_join(classifier, measure)
        assert joined.columns == ("x", "dage", "v")
        assert joined.to_multiset() == {("u1", 28, 100): 1, ("u1", 28, 120): 1}

    def test_join_bag_semantics_multiplies_duplicates(self):
        left = Relation(["x"], [("a",), ("a",)])
        right = Relation(["x", "v"], [("a", 1)])
        assert len(natural_join(left, right)) == 2

    def test_join_on_differently_named_columns(self):
        left = Relation(["fact", "d"], [("u1", "a")])
        right = Relation(["entity", "v"], [("u1", 10), ("u2", 20)])
        joined = join_on(left, right, [("fact", "entity")])
        assert joined.columns == ("fact", "d", "entity", "v")
        assert joined.rows == [("u1", "a", "u1", 10)]

    def test_join_rejects_ambiguous_columns(self):
        left = Relation(["x", "v"], [("a", 1)])
        right = Relation(["x", "v"], [("a", 2)])
        with pytest.raises(SchemaMismatchError):
            join_on(left, right, [("x", "x")])

    def test_join_without_pairs_is_cross_product(self):
        left = Relation(["a"], [(1,), (2,)])
        right = Relation(["b"], [(3,)])
        assert len(join_on(left, right, [])) == 2

    def test_natural_join_without_shared_columns_is_cross_product(self):
        left = Relation(["a"], [(1,), (2,)])
        right = Relation(["b"], [(3,), (4,)])
        assert len(natural_join(left, right)) == 4

    def test_cross_product_requires_disjoint_schemas(self):
        with pytest.raises(SchemaMismatchError):
            cross_product(Relation(["a"], [(1,)]), Relation(["a"], [(2,)]))

    def test_join_builds_hash_on_smaller_side_same_result(self):
        small = Relation(["x", "s"], [("a", 1)])
        large = Relation(["x", "l"], [("a", i) for i in range(10)])
        assert join_on(small, large, [("x", "x")]).bag_equal(
            join_on(small, large.copy(), [("x", "x")])
        )
        assert len(join_on(large, small, [("x", "x")])) == 10


class TestUnionDifference:
    def test_union_all_concatenates(self):
        a = Relation(["x"], [(1,), (2,)])
        b = Relation(["x"], [(2,)])
        assert union_all(a, b).to_multiset() == {(1,): 1, (2,): 2}

    def test_union_all_reorders_compatible_schemas(self):
        a = Relation(["x", "y"], [(1, 2)])
        b = Relation(["y", "x"], [(4, 3)])
        result = union_all(a, b)
        assert result.columns == ("x", "y")
        assert (3, 4) in result.rows

    def test_union_incompatible_schemas(self):
        with pytest.raises(SchemaMismatchError):
            union_all(Relation(["x"], [(1,)]), Relation(["y"], [(1,)]))

    def test_union_requires_an_argument(self):
        with pytest.raises(SchemaMismatchError):
            union_all()

    def test_difference_all_respects_multiplicities(self):
        a = Relation(["x"], [(1,), (1,), (2,)])
        b = Relation(["x"], [(1,)])
        assert difference_all(a, b).to_multiset() == {(1,): 1, (2,): 1}

    def test_difference_incompatible_schemas(self):
        with pytest.raises(SchemaMismatchError):
            difference_all(Relation(["x"], [(1,)]), Relation(["y"], [(1,)]))


class TestExtendColumn:
    def test_extend_column_computes_value_from_row(self):
        relation = Relation(["a", "b"], [(1, 2), (3, 4)])
        extended = extend_column(relation, "total", lambda row: row["a"] + row["b"])
        assert extended.columns == ("a", "b", "total")
        assert extended.rows == [(1, 2, 3), (3, 4, 7)]

    def test_extend_column_rejects_existing_name(self):
        relation = Relation(["a"], [(1,)])
        with pytest.raises(SchemaMismatchError):
            extend_column(relation, "a", lambda row: 0)
