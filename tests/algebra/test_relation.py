"""Unit tests for the bag Relation."""

import pytest

from repro.errors import SchemaMismatchError, UnknownColumnError
from repro.algebra.relation import Relation
from repro.rdf import EX, Literal


class TestConstruction:
    def test_columns_and_rows(self):
        relation = Relation(["x", "v"], [(1, 10), (2, 20)])
        assert relation.columns == ("x", "v")
        assert relation.arity == 2
        assert len(relation) == 2
        assert list(relation) == [(1, 10), (2, 20)]

    def test_duplicate_rows_are_kept(self):
        relation = Relation(["x"], [(1,), (1,), (2,)])
        assert len(relation) == 3
        assert relation.to_multiset() == {(1,): 2, (2,): 1}

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaMismatchError):
            Relation(["x", "x"])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaMismatchError):
            Relation(["x", "v"], [(1,)])

    def test_from_dicts_fills_missing_with_none(self):
        relation = Relation.from_dicts(["x", "v"], [{"x": 1, "v": 2}, {"x": 3}])
        assert relation.rows == [(1, 2), (3, None)]

    def test_empty_constructor(self):
        relation = Relation.empty(["a", "b"])
        assert len(relation) == 0 and relation.columns == ("a", "b")
        assert not relation


class TestColumnAccess:
    def test_column_index_and_unknown(self):
        relation = Relation(["x", "v"], [(1, 2)])
        assert relation.column_index("v") == 1
        assert relation.column_indexes(["v", "x"]) == (1, 0)
        with pytest.raises(UnknownColumnError):
            relation.column_index("nope")

    def test_column_values_and_distinct(self):
        relation = Relation(["x", "v"], [(1, 5), (1, 5), (2, 7)])
        assert relation.column_values("v") == [5, 5, 7]
        assert relation.distinct_values("x") == {1, 2}

    def test_row_dict_iteration(self):
        relation = Relation(["x", "v"], [(1, 2)])
        assert list(relation.iter_dicts()) == [{"x": 1, "v": 2}]


class TestMutationHelpers:
    def test_add_row_checks_arity(self):
        relation = Relation(["x", "v"])
        relation.add_row((1, 2))
        with pytest.raises(SchemaMismatchError):
            relation.add_row((1,))
        assert len(relation) == 1

    def test_extend(self):
        relation = Relation(["x"])
        relation.extend([(1,), (2,)])
        assert len(relation) == 2


class TestComparison:
    def test_bag_equality_counts_duplicates(self):
        a = Relation(["x"], [(1,), (1,), (2,)])
        b = Relation(["x"], [(2,), (1,), (1,)])
        c = Relation(["x"], [(1,), (2,)])
        assert a.bag_equal(b)
        assert a == b
        assert not a.bag_equal(c)

    def test_set_equality_ignores_duplicates(self):
        a = Relation(["x"], [(1,), (1,), (2,)])
        c = Relation(["x"], [(1,), (2,)])
        assert a.set_equal(c)

    def test_column_order_option(self):
        a = Relation(["x", "v"], [(1, 10)])
        b = Relation(["v", "x"], [(10, 1)])
        assert not a.bag_equal(b)
        assert a.bag_equal(b, ignore_column_order=True)
        assert a.set_equal(b, ignore_column_order=True)

    def test_different_schema_never_equal(self):
        assert not Relation(["x"], [(1,)]).bag_equal(Relation(["y"], [(1,)]))

    def test_relations_unhashable(self):
        with pytest.raises(TypeError):
            hash(Relation(["x"]))


class TestReshaping:
    def test_reorder(self):
        relation = Relation(["x", "v"], [(1, 10), (2, 20)])
        reordered = relation.reorder(["v", "x"])
        assert reordered.columns == ("v", "x")
        assert reordered.rows == [(10, 1), (20, 2)]

    def test_reorder_requires_permutation(self):
        relation = Relation(["x", "v"], [(1, 10)])
        with pytest.raises(SchemaMismatchError):
            relation.reorder(["x"])

    def test_copy_is_independent(self):
        relation = Relation(["x"], [(1,)])
        clone = relation.copy()
        clone.add_row((2,))
        assert len(relation) == 1 and len(clone) == 2

    def test_map_rows(self):
        relation = Relation(["x"], [(1,), (2,)])
        doubled = relation.map_rows(lambda row: (row[0] * 2,))
        assert doubled.rows == [(2,), (4,)]
        renamed = relation.map_rows(lambda row: (row[0], row[0] + 1), columns=["x", "y"])
        assert renamed.columns == ("x", "y")

    def test_head_and_sorted(self):
        relation = Relation(["x"], [(3,), (1,), (2,)])
        assert relation.head(2).rows == [(3,), (1,)]
        assert relation.sorted().rows == [(1,), (2,), (3,)]


class TestDisplay:
    def test_to_text_contains_headers_and_values(self):
        relation = Relation(["dage", "dcity", "v"], [(Literal(28), EX.term("Madrid"), 3)])
        text = relation.to_text()
        assert "dage" in text and "dcity" in text
        assert "28" in text and "Madrid" in text

    def test_to_text_truncates(self):
        relation = Relation(["x"], [(i,) for i in range(30)])
        text = relation.to_text(max_rows=5)
        assert "more rows" in text
