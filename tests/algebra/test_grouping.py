"""Unit tests for the γ group-and-aggregate operator."""

import pytest

from repro.errors import UnknownColumnError
from repro.algebra.grouping import aggregate_column, group_aggregate, group_rows
from repro.algebra.relation import Relation
from repro.rdf import Literal


@pytest.fixture()
def word_counts() -> Relation:
    """The projected pres(Q) of Example 4 (x, dage, dcity, vwords)."""
    return Relation(
        ["x", "dage", "dcity", "vwords"],
        [
            ("user1", 28, "Madrid", 100),
            ("user1", 28, "Madrid", 120),
            ("user3", 35, "NY", 570),
            ("user4", 28, "Madrid", 410),
        ],
    )


class TestGroupRows:
    def test_partitioning(self, word_counts):
        groups = group_rows(word_counts, ["dage", "dcity"])
        assert set(groups) == {(28, "Madrid"), (35, "NY")}
        assert len(groups[(28, "Madrid")]) == 3

    def test_empty_by_creates_single_group(self, word_counts):
        groups = group_rows(word_counts, [])
        assert set(groups) == {()}
        assert len(groups[()]) == 4

    def test_unknown_column(self, word_counts):
        with pytest.raises(UnknownColumnError):
            group_rows(word_counts, ["nope"])


class TestGroupAggregate:
    def test_example4_average(self, word_counts):
        result = group_aggregate(word_counts, ["dage", "dcity"], "vwords", "avg", output_column="v")
        assert result.columns == ("dage", "dcity", "v")
        cells = {row[:2]: row[2] for row in result}
        assert cells[(28, "Madrid")] == pytest.approx(210.0)
        assert cells[(35, "NY")] == pytest.approx(570.0)

    def test_count_and_sum(self, word_counts):
        counts = group_aggregate(word_counts, ["dcity"], "vwords", "count")
        sums = group_aggregate(word_counts, ["dcity"], "vwords", "sum")
        assert dict((row[0], row[1]) for row in counts) == {"Madrid": 3, "NY": 1}
        assert dict((row[0], row[1]) for row in sums) == {"Madrid": 630, "NY": 570}

    def test_global_aggregation_with_empty_by(self, word_counts):
        result = group_aggregate(word_counts, [], "vwords", "sum")
        assert result.columns == ("v",)
        assert result.rows == [(1200,)]

    def test_none_measures_are_ignored(self):
        relation = Relation(["g", "v"], [("a", 1), ("a", None), ("b", None)])
        result = group_aggregate(relation, ["g"], "v", "count")
        assert dict(result.rows) == {"a": 1}

    def test_rdf_literal_measures(self):
        relation = Relation(["g", "v"], [("a", Literal(2)), ("a", Literal(3))])
        result = group_aggregate(relation, ["g"], "v", "sum")
        assert result.rows == [("a", 5)]

    def test_output_column_name_can_be_customized(self, word_counts):
        result = group_aggregate(word_counts, ["dage"], "vwords", "max", output_column="longest")
        assert result.columns == ("dage", "longest")

    def test_output_column_clash_with_grouping_column(self, word_counts):
        with pytest.raises(UnknownColumnError):
            group_aggregate(word_counts, ["dage"], "vwords", "max", output_column="dage")

    def test_empty_relation_produces_empty_result(self):
        relation = Relation(["g", "v"])
        assert len(group_aggregate(relation, ["g"], "v", "sum")) == 0


class TestAggregateColumn:
    def test_whole_column(self, word_counts):
        assert aggregate_column(word_counts, "vwords", "sum") == 1200
        assert aggregate_column(word_counts, "vwords", "min") == 100

    def test_empty_column_raises(self):
        from repro.errors import AggregationError

        with pytest.raises(AggregationError):
            aggregate_column(Relation(["v"]), "v", "sum")
