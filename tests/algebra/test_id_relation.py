"""Unit tests for the id-space relation representation and its operators."""

import pytest

from repro.errors import SchemaMismatchError
from repro.rdf import EX, Graph, Literal, RDF, Triple
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.evaluator import BGPEvaluator
from repro.bgp.query import BGPQuery
from repro.algebra.expressions import between, conjunction, equals, is_in
from repro.algebra.operators import dedup, join_on, project, rename, select, union_all
from repro.algebra.grouping import group_aggregate
from repro.algebra.relation import IdRelation, Relation

RDF_TYPE = RDF.term("type")


@pytest.fixture()
def graph() -> Graph:
    graph = Graph()
    for user, age, city in (
        ("u1", 28, "Madrid"),
        ("u2", 35, "NY"),
        ("u3", 35, "Madrid"),
    ):
        subject = EX.term(user)
        graph.add(Triple(subject, RDF_TYPE, EX.Blogger))
        graph.add(Triple(subject, EX.hasAge, Literal(age)))
        graph.add(Triple(subject, EX.livesIn, EX.term(city)))
    return graph


@pytest.fixture()
def people(graph) -> IdRelation:
    x, age, city = Variable("x"), Variable("age"), Variable("city")
    query = BGPQuery(
        [x, age, city],
        [
            TriplePattern(x, RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.hasAge, age),
            TriplePattern(x, EX.livesIn, city),
        ],
    )
    return BGPEvaluator(graph).evaluate_ids(query)


class TestIdRelation:
    def test_evaluate_ids_returns_encoded_relation(self, people, graph):
        assert isinstance(people, IdRelation)
        assert people.dictionary is graph.dictionary
        assert people.encoded_columns == {"x", "age", "city"}
        assert all(isinstance(value, int) for row in people for value in row)

    def test_materialize_decodes_every_column(self, people):
        decoded = people.materialize()
        assert not isinstance(decoded, IdRelation)
        assert set(decoded.rows) == {
            (EX.term("u1"), Literal(28), EX.term("Madrid")),
            (EX.term("u2"), Literal(35), EX.term("NY")),
            (EX.term("u3"), Literal(35), EX.term("Madrid")),
        }

    def test_iter_decoded_matches_materialize(self, people):
        assert list(people.iter_decoded()) == people.materialize().rows

    def test_row_as_dict_decodes(self, people):
        row_dicts = list(people.iter_dicts())
        assert {d["city"] for d in row_dicts} == {EX.term("Madrid"), EX.term("NY")}

    def test_evaluate_equals_materialized_evaluate_ids(self, graph):
        x = Variable("x")
        query = BGPQuery([x], [TriplePattern(x, RDF_TYPE, EX.Blogger)])
        evaluator = BGPEvaluator(graph)
        assert evaluator.evaluate(query).bag_equal(evaluator.evaluate_ids(query).materialize())

    def test_bag_equality_across_spaces(self, people):
        assert people.bag_equal(people.materialize())
        assert people.materialize().bag_equal(people)


class TestOperatorsPreserveEncoding:
    def test_select_compiled_predicate_stays_encoded(self, people):
        selected = select(people, equals("city", EX.term("Madrid")))
        assert isinstance(selected, IdRelation)
        assert len(selected) == 2
        assert selected.materialize().distinct_values("x") == {EX.term("u1"), EX.term("u3")}

    def test_select_range_predicate_on_ids(self, people):
        selected = select(people, between("age", 30, 40))
        assert selected.materialize().distinct_values("age") == {Literal(35)}

    def test_select_conjunction_and_is_in(self, people):
        predicate = conjunction(is_in("age", [28, 35]), equals("city", EX.term("NY")))
        selected = select(people, predicate)
        assert len(selected) == 1

    def test_select_with_opaque_callable_sees_decoded_rows(self, people):
        selected = select(people, lambda row: row["city"] == EX.term("NY"))
        assert isinstance(selected, IdRelation)
        assert selected.materialize().distinct_values("x") == {EX.term("u2")}

    def test_project_and_dedup_keep_metadata(self, people):
        cities = dedup(project(people, ("city",)))
        assert isinstance(cities, IdRelation)
        assert cities.encoded_columns == {"city"}
        assert len(cities) == 2

    def test_rename_maps_encoded_names(self, people):
        renamed = rename(people, {"city": "dcity"})
        assert renamed.encoded_columns == {"x", "age", "dcity"}
        assert renamed.materialize().distinct_values("dcity") == {
            EX.term("Madrid"),
            EX.term("NY"),
        }

    def test_join_on_ids(self, people):
        ages = rename(project(people, ("x", "age")), {"age": "age2"})
        joined = join_on(people, ages, [("x", "x")])
        assert isinstance(joined, IdRelation)
        assert joined.encoded_columns == {"x", "age", "city", "age2"}
        assert len(joined) == 3

    def test_mixed_space_join_materializes(self, people):
        decoded_ages = rename(project(people, ("x", "age")), {"age": "age2"}).materialize()
        joined = join_on(people, decoded_ages, [("x", "x")])
        assert not isinstance(joined, IdRelation)
        assert len(joined) == 3
        assert joined.distinct_values("age2") == {Literal(28), Literal(35)}

    def test_union_of_same_space_relations(self, people):
        doubled = union_all(people, people)
        assert isinstance(doubled, IdRelation)
        assert len(doubled) == 6

    def test_union_of_mixed_spaces_decodes(self, people):
        mixed = union_all(people, people.materialize())
        assert not isinstance(mixed, IdRelation)
        assert len(mixed) == 6
        assert mixed.bag_equal(union_all(people.materialize(), people.materialize()))

    def test_different_dictionaries_cannot_silently_combine(self, graph, people):
        other = Graph()
        other.add(Triple(EX.term("u9"), RDF_TYPE, EX.Blogger))
        x = Variable("x")
        foreign = BGPEvaluator(other).evaluate_ids(
            BGPQuery([x], [TriplePattern(x, RDF_TYPE, EX.Blogger)])
        )
        foreign = rename(foreign, {"x": "y"})
        # join with no shared dictionary falls back to decoded values
        joined = join_on(project(people, ("x",)), foreign, [("x", "y")])
        assert len(joined) == 0  # u9 is not among u1..u3 once decoded

    def test_group_aggregate_decodes_measure_and_keeps_dims_encoded(self, people):
        aggregated = group_aggregate(
            people, by=("city",), measure="age", function="avg", output_column="age"
        )
        assert isinstance(aggregated, IdRelation)
        assert aggregated.encoded_columns == {"city"}
        cells = {row[0]: row[1] for row in aggregated.materialize()}
        assert cells[EX.term("Madrid")] == pytest.approx(31.5)
        assert cells[EX.term("NY")] == pytest.approx(35.0)

    def test_group_aggregate_count_fast_path(self, people):
        counted = group_aggregate(
            people, by=("city",), measure="x", function="count", output_column="n"
        )
        cells = {row[0]: row[1] for row in counted.materialize()}
        assert cells == {EX.term("Madrid"): 2, EX.term("NY"): 1}


class TestAdoption:
    def test_relation_like_requires_consistent_dictionaries(self, people, graph):
        other = Graph()
        other.add(Triple(EX.term("u9"), RDF_TYPE, EX.Blogger))
        x = Variable("x")
        foreign = BGPEvaluator(other).evaluate_ids(
            BGPQuery([x], [TriplePattern(x, RDF_TYPE, EX.Blogger)])
        )
        from repro.algebra.relation import relation_like

        with pytest.raises(SchemaMismatchError):
            relation_like(("x", "age"), [], people, foreign)

    def test_adopt_rejects_duplicate_columns(self):
        with pytest.raises(SchemaMismatchError):
            Relation.adopt(("a", "a"), [])


class TestCompiledSelectSemantics:
    def test_missing_column_on_empty_relation_is_a_noop(self):
        """σ over zero rows never evaluates the predicate (legacy semantics)."""
        empty = Relation(("a",), [])
        assert len(select(empty, equals("b", 1))) == 0

    def test_missing_column_on_populated_relation_raises(self):
        from repro.errors import UnknownColumnError

        relation = Relation(("a",), [(1,)])
        with pytest.raises(UnknownColumnError):
            select(relation, equals("b", 1))
