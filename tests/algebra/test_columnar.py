"""Unit tests for the columnar kernels and the engine toggle.

Covers :mod:`repro.algebra.columnar` edge cases — empty relations,
all-rows-filtered masks, single-group γ, missing-measure ``None`` handling —
plus the engine-resolution contract (``REPRO_ENGINE`` override, the
``ConfigurationError`` raised when columnar is forced without numpy) and
the planner's per-engine cost multiplier.
"""

import pickle

import pytest

np = pytest.importorskip("numpy")

from repro.errors import ConfigurationError, UnknownColumnError
from repro.algebra import columnar
from repro.algebra.columnar import (
    ArrayGroupStates,
    COLUMNAR_COST_MULTIPLIER,
    ColumnarIdRelation,
    group_reduce,
    group_states_columnar,
    join_columnar,
    prepend_key_column,
    resolve_engine,
    select_columnar,
)
from repro.algebra.expressions import between, conjunction, disjunction, equals, is_in, negation
from repro.algebra.grouping import (
    finalize_group_states,
    group_aggregate,
    group_partial_states,
    merge_group_states,
)
from repro.algebra.operators import join_on, project, select
from repro.algebra.relation import IdRelation, Relation
from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import IRI, Literal

AGGREGATES = ("count", "sum", "avg", "min", "max", "count_distinct")


@pytest.fixture(autouse=True)
def _clear_engine_env(monkeypatch):
    """These tests pin the resolution contract itself; CI's engine-oracle
    matrix exports REPRO_ENGINE, which must not leak into them."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)


def _dictionary_with(values):
    dictionary = TermDictionary()
    ids = [dictionary.encode(value) for value in values]
    return dictionary, ids


def _paired_relations(rows, columns=("x", "d", "v"), encoded=None):
    """The same data as a columnar and as a row-backed id relation."""
    dictionary = TermDictionary()
    id_rows = []
    for row in rows:
        id_rows.append(tuple(dictionary.encode(value) for value in row))
    arrays = {
        name: np.asarray([row[index] for row in id_rows], dtype=np.int64)
        for index, name in enumerate(columns)
    }
    columnar_relation = ColumnarIdRelation.from_arrays(columns, arrays, dictionary, encoded)
    row_relation = IdRelation(columns, id_rows, dictionary=dictionary, encoded=encoded)
    return columnar_relation, row_relation


def _sample_rows(count=9):
    rows = []
    for index in range(count):
        rows.append(
            (
                IRI(f"http://example.org/fact{index % 4}"),
                IRI(f"http://example.org/city{index % 3}"),
                Literal(10 * (index % 5)),
            )
        )
    return rows


class TestColumnarIdRelation:
    def test_rows_materialize_lazily_and_match_row_engine(self):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        assert len(columnar_relation) == len(row_relation)
        assert list(columnar_relation) == list(row_relation)
        assert columnar_relation.bag_equal(row_relation)
        assert columnar_relation.materialize().bag_equal(row_relation.materialize())

    def test_empty_relation(self):
        dictionary = TermDictionary()
        empty = ColumnarIdRelation.from_arrays(
            ("x", "v"),
            {"x": np.empty(0, dtype=np.int64), "v": np.empty(0, dtype=np.int64)},
            dictionary,
        )
        assert len(empty) == 0
        assert not empty
        assert list(empty) == []
        assert empty.materialize().rows == []

    def test_reorder_and_head_stay_columnar(self):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        reordered = columnar_relation.reorder(("v", "x", "d"))
        assert isinstance(reordered, ColumnarIdRelation)
        assert reordered.bag_equal(row_relation.reorder(("v", "x", "d")))
        head = columnar_relation.head(3)
        assert isinstance(head, ColumnarIdRelation)
        assert len(head) == 3

    def test_column_access(self):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        assert columnar_relation.column_values("d") == row_relation.column_values("d")
        assert columnar_relation.distinct_values("d") == row_relation.distinct_values("d")
        with pytest.raises(UnknownColumnError):
            columnar_relation.column_array("missing")

    def test_from_rows_refuses_none_values(self):
        """Missing measures never reach the int64 kernels: construction
        falls back (None) and the caller keeps the row representation,
        whose γ filters None measures."""
        dictionary = TermDictionary()
        assert (
            ColumnarIdRelation.from_rows(("x", "v"), [(1, None)], dictionary) is None
        )
        assert ColumnarIdRelation.from_rows(("x", "v"), [(1, 2.5)], dictionary) is None
        built = ColumnarIdRelation.from_rows(("x", "v"), [(1, 2)], dictionary)
        assert isinstance(built, ColumnarIdRelation)
        assert built.rows == [(1, 2)]

    def test_schema_validation(self):
        dictionary = TermDictionary()
        from repro.errors import SchemaMismatchError

        with pytest.raises(SchemaMismatchError):
            ColumnarIdRelation.from_arrays(
                ("x", "x"),
                {"x": np.zeros(1, dtype=np.int64)},
                dictionary,
            )
        with pytest.raises(SchemaMismatchError):
            ColumnarIdRelation.from_arrays(
                ("x", "v"),
                {
                    "x": np.zeros(2, dtype=np.int64),
                    "v": np.zeros(3, dtype=np.int64),
                },
                dictionary,
            )


class TestSelectKernel:
    def test_sigma_like_predicates_match_row_select(self):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        predicates = [
            equals("d", IRI("http://example.org/city1")),
            is_in("d", [IRI("http://example.org/city0"), IRI("http://example.org/city2")]),
            between("v", 10, 30),
            conjunction(between("v", 0, 30), equals("d", IRI("http://example.org/city0"))),
            disjunction(equals("v", Literal(0)), equals("v", Literal(40))),
            negation(equals("d", IRI("http://example.org/city1"))),
        ]
        for predicate in predicates:
            fast = select(columnar_relation, predicate)
            slow = select(row_relation, predicate)
            assert fast.bag_equal(slow)

    def test_all_rows_filtered_mask(self):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        none_match = equals("d", IRI("http://example.org/elsewhere"))
        fast = select(columnar_relation, none_match)
        assert isinstance(fast, ColumnarIdRelation)
        assert len(fast) == 0
        assert fast.bag_equal(select(row_relation, none_match))

    def test_empty_relation_select(self):
        dictionary = TermDictionary()
        empty = ColumnarIdRelation.from_arrays(
            ("d",), {"d": np.empty(0, dtype=np.int64)}, dictionary
        )
        assert len(select(empty, equals("d", Literal(1)))) == 0

    def test_sigma_predicate_takes_the_mask_fast_path(self):
        """A real SigmaPredicate must mask-compile (not silently fall back
        to the row loop) — the engine's hottest selection shape."""
        from repro.analytics.sigma import DimensionRestriction, Sigma

        columnar_relation, row_relation = _paired_relations(
            _sample_rows(), columns=("x", "dage", "v")
        )
        sigma = Sigma(
            ("dage",),
            {"dage": DimensionRestriction.to_value(IRI("http://example.org/city1"))},
        )
        fast = select_columnar(columnar_relation, sigma.predicate())
        assert fast is not None, "SigmaPredicate lost the vectorized fast path"
        assert fast.bag_equal(select(row_relation, sigma.predicate()))

    def test_opaque_callable_falls_back_to_rows(self):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        opaque = lambda row: str(row["d"]).endswith("city1")  # noqa: E731
        assert select_columnar(columnar_relation, opaque) is None
        assert select(columnar_relation, opaque).bag_equal(select(row_relation, opaque))


class TestJoinKernel:
    def test_join_matches_row_join_with_multiplicities(self):
        dictionary = TermDictionary()
        facts = [dictionary.encode(IRI(f"http://example.org/f{i}")) for i in range(4)]
        left = ColumnarIdRelation.from_arrays(
            ("x", "d"),
            {
                "x": np.asarray([facts[0], facts[0], facts[1], facts[3]], dtype=np.int64),
                "d": np.asarray(facts[:4], dtype=np.int64),
            },
            dictionary,
        )
        right = ColumnarIdRelation.from_arrays(
            ("x", "v"),
            {
                "x": np.asarray([facts[0], facts[1], facts[1], facts[2]], dtype=np.int64),
                "v": np.asarray(facts[:4], dtype=np.int64),
            },
            dictionary,
        )
        left_rows = IdRelation(("x", "d"), left.rows, dictionary=dictionary)
        right_rows = IdRelation(("x", "v"), right.rows, dictionary=dictionary)
        fast = join_on(left, right, [("x", "x")])
        assert isinstance(fast, ColumnarIdRelation)
        assert fast.bag_equal(join_on(left_rows, right_rows, [("x", "x")]))

    def test_join_empty_sides(self):
        dictionary = TermDictionary()
        empty = ColumnarIdRelation.from_arrays(
            ("x", "d"),
            {"x": np.empty(0, dtype=np.int64), "d": np.empty(0, dtype=np.int64)},
            dictionary,
        )
        other = ColumnarIdRelation.from_arrays(
            ("x", "v"),
            {"x": np.zeros(2, dtype=np.int64), "v": np.ones(2, dtype=np.int64)},
            dictionary,
        )
        assert len(join_columnar(empty, other, "x", "x", ("v",))) == 0
        assert len(join_columnar(other, empty, "x", "x", ("d",))) == 0


class TestGroupReduceKernel:
    @pytest.mark.parametrize("aggregate", AGGREGATES)
    def test_matches_row_gamma(self, aggregate):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        fast = group_reduce(columnar_relation, ["d"], "v", aggregate)
        assert fast is not None
        assert fast.bag_equal(group_aggregate(row_relation, ["d"], "v", aggregate))

    @pytest.mark.parametrize("aggregate", AGGREGATES)
    def test_single_group(self, aggregate):
        rows = [
            (IRI("http://example.org/f0"), IRI("http://example.org/only"), Literal(7)),
            (IRI("http://example.org/f1"), IRI("http://example.org/only"), Literal(9)),
        ]
        columnar_relation, row_relation = _paired_relations(rows)
        fast = group_reduce(columnar_relation, ["d"], "v", aggregate)
        slow = group_aggregate(row_relation, ["d"], "v", aggregate)
        assert len(fast) == 1
        assert fast.bag_equal(slow)

    @pytest.mark.parametrize("aggregate", AGGREGATES)
    def test_empty_relation(self, aggregate):
        dictionary = TermDictionary()
        empty = ColumnarIdRelation.from_arrays(
            ("d", "v"),
            {"d": np.empty(0, dtype=np.int64), "v": np.empty(0, dtype=np.int64)},
            dictionary,
        )
        fast = group_reduce(empty, ["d"], "v", aggregate)
        assert fast is not None and len(fast) == 0

    def test_no_grouping_columns(self):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        fast = group_reduce(columnar_relation, [], "v", "sum")
        assert fast.bag_equal(group_aggregate(row_relation, [], "v", "sum"))

    def test_non_numeric_measure_falls_back(self):
        rows = [
            (IRI("http://example.org/f0"), IRI("http://example.org/c"), Literal("west")),
            (IRI("http://example.org/f1"), IRI("http://example.org/c"), Literal("east")),
        ]
        columnar_relation, row_relation = _paired_relations(rows)
        assert group_reduce(columnar_relation, ["d"], "v", "sum") is None
        # The public γ still answers (row fallback), identically to rows:
        # sum over strings is undefined, so the group is omitted.
        assert group_aggregate(columnar_relation, ["d"], "v", "sum").bag_equal(
            group_aggregate(row_relation, ["d"], "v", "sum")
        )
        # min/max over strings are defined — and must also match.
        assert group_aggregate(columnar_relation, ["d"], "v", "min").bag_equal(
            group_aggregate(row_relation, ["d"], "v", "min")
        )

    @pytest.mark.parametrize("aggregate", ("sum", "avg", "min", "max"))
    def test_huge_integers_fall_back_to_exact_row_arithmetic(self, aggregate):
        """Values that could overflow int64 sums never enter the kernels:
        the reduction answers None and the row engine's unlimited-precision
        arithmetic produces the exact cell."""
        rows = [
            (IRI("http://example.org/f0"), IRI("http://example.org/c"), Literal(6 * 10**18)),
            (IRI("http://example.org/f1"), IRI("http://example.org/c"), Literal(6 * 10**18)),
            (IRI("http://example.org/f2"), IRI("http://example.org/c"), Literal(2**63)),
        ]
        columnar_relation, row_relation = _paired_relations(rows)
        assert group_reduce(columnar_relation, ["d"], "v", aggregate) is None
        fast = group_aggregate(columnar_relation, ["d"], "v", aggregate)
        slow = group_aggregate(row_relation, ["d"], "v", aggregate)
        assert fast.bag_equal(slow)
        if aggregate == "sum":
            assert fast.rows[0][-1] == 12 * 10**18 + 2**63  # exact, not wrapped

    def test_count_distinct_merges_equal_comparables(self):
        """Ids decoding to equal comparable values count once (28 vs 28.0)."""
        dictionary = TermDictionary()
        group = dictionary.encode(IRI("http://example.org/g"))
        ids = [
            dictionary.encode(Literal(28)),
            dictionary.encode(Literal(28.0)),
            dictionary.encode(Literal(29)),
        ]
        relation = ColumnarIdRelation.from_arrays(
            ("d", "v"),
            {
                "d": np.asarray([group] * 3, dtype=np.int64),
                "v": np.asarray(ids, dtype=np.int64),
            },
            dictionary,
        )
        row_relation = IdRelation(("d", "v"), relation.rows, dictionary=dictionary)
        fast = group_reduce(relation, ["d"], "v", "count_distinct")
        assert fast.bag_equal(group_aggregate(row_relation, ["d"], "v", "count_distinct"))
        assert fast.rows[0][-1] == 2


class TestArrayGroupStates:
    @pytest.mark.parametrize("aggregate", ("count", "sum", "avg", "min", "max"))
    def test_states_match_dict_form(self, aggregate):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        array_states = group_partial_states(columnar_relation, ["d"], "v", aggregate)
        dict_states = group_partial_states(row_relation, ["d"], "v", aggregate)
        assert isinstance(array_states, ArrayGroupStates)
        assert array_states.to_dict() == dict_states

    @pytest.mark.parametrize("aggregate", ("count", "sum", "avg", "min", "max"))
    def test_split_merge_equals_serial(self, aggregate):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        halves = [
            columnar_relation.take(np.arange(0, 4)),
            columnar_relation.take(np.arange(4, 9)),
        ]
        parts = [group_partial_states(half, ["d"], "v", aggregate) for half in halves]
        merged = merge_group_states(parts, aggregate)
        assert isinstance(merged, ArrayGroupStates)
        serial = group_aggregate(row_relation, ["d"], "v", aggregate)
        assert sorted(finalize_group_states(merged, aggregate)) == sorted(serial.rows)

    def test_empty_partition_merges(self):
        columnar_relation, _ = _paired_relations(_sample_rows())
        dictionary = columnar_relation.dictionary
        empty = ColumnarIdRelation.from_arrays(
            ("x", "d", "v"),
            {name: np.empty(0, dtype=np.int64) for name in ("x", "d", "v")},
            dictionary,
        )
        full = group_partial_states(columnar_relation, ["d"], "v", "sum")
        nothing = group_partial_states(empty, ["d"], "v", "sum")
        assert nothing.group_count() == 0
        merged = merge_group_states([full, nothing], "sum")
        assert sorted(finalize_group_states(merged, "sum")) == sorted(
            finalize_group_states(full, "sum")
        )

    def test_mixed_array_and_dict_partitions(self):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        array_states = group_partial_states(columnar_relation, ["d"], "v", "avg")
        dict_states = group_partial_states(row_relation, ["d"], "v", "avg")
        merged = merge_group_states([array_states, dict_states], "avg")
        assert isinstance(merged, dict)
        doubled = {key: (total * 2, count * 2) for key, (total, count) in dict_states.items()}
        assert merged == doubled

    def test_states_pickle_across_processes(self):
        columnar_relation, _ = _paired_relations(_sample_rows())
        states = group_partial_states(columnar_relation, ["d"], "v", "avg")
        clone = pickle.loads(pickle.dumps(states))
        assert isinstance(clone, ArrayGroupStates)
        assert clone.to_dict() == states.to_dict()


class TestKeyColumn:
    def test_prepend_key_column(self):
        columnar_relation, _ = _paired_relations(_sample_rows(), columns=("x", "d", "v"))
        keyed = prepend_key_column(columnar_relation, "k", range(5, 5 + len(columnar_relation)))
        assert keyed.columns == ("k", "x", "d", "v")
        assert keyed.column_values("k") == list(range(5, 14))
        assert "k" not in keyed.encoded_columns

    def test_projection_shares_columns(self):
        columnar_relation, row_relation = _paired_relations(_sample_rows())
        projected = project(columnar_relation, ("d", "v"))
        assert isinstance(projected, ColumnarIdRelation)
        assert projected.bag_equal(project(row_relation, ("d", "v")))


class TestEngineResolution:
    def test_explicit_choices(self):
        assert resolve_engine("rows") == "rows"
        assert resolve_engine("columnar") == "columnar"
        assert resolve_engine("auto") == "columnar"  # numpy importable here
        assert resolve_engine(None) == "columnar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "rows")
        assert resolve_engine() == "rows"
        monkeypatch.setenv("REPRO_ENGINE", "columnar")
        assert resolve_engine() == "columnar"
        # Explicit arguments beat the environment.
        assert resolve_engine("rows") == "rows"

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_engine("vectorized")
        monkeypatch.setenv("REPRO_ENGINE", "nope")
        with pytest.raises(ConfigurationError):
            resolve_engine()

    def test_forced_columnar_without_numpy_raises(self, monkeypatch):
        """No silent degradation: the error names the [fast] extra."""
        monkeypatch.setattr(columnar, "HAVE_NUMPY", False)
        with pytest.raises(ConfigurationError, match=r"\[fast\]"):
            resolve_engine("columnar")
        monkeypatch.setenv("REPRO_ENGINE", "columnar")
        with pytest.raises(ConfigurationError, match=r"\[fast\]"):
            resolve_engine()
        # auto (no forcing) quietly falls back to rows.
        monkeypatch.delenv("REPRO_ENGINE")
        assert resolve_engine() == "rows"


class TestEngineWiring:
    def test_evaluator_and_session_expose_engine(self, example2_instance):
        from repro.analytics.evaluator import AnalyticalQueryEvaluator
        from repro.olap.session import OLAPSession

        assert AnalyticalQueryEvaluator(example2_instance).engine == "columnar"
        assert AnalyticalQueryEvaluator(example2_instance, engine="rows").engine == "rows"
        # The decode-eagerly baseline always runs on rows.
        assert AnalyticalQueryEvaluator(example2_instance, id_space=False).engine == "rows"
        with OLAPSession(example2_instance, engine="rows") as session:
            assert session.engine == "rows"

    def test_bgp_emits_column_blocks_on_columnar_engine(self, example2_instance):
        from repro.bgp.evaluator import BGPEvaluator
        from tests.conftest import make_sites_query

        query = make_sites_query().classifier
        fast = BGPEvaluator(example2_instance, engine="columnar").evaluate_ids(query)
        slow = BGPEvaluator(example2_instance, engine="rows").evaluate_ids(query)
        assert isinstance(fast, ColumnarIdRelation)
        assert not isinstance(slow, ColumnarIdRelation)
        assert fast.bag_equal(slow)

    def test_process_worker_initializer_honours_engine_pin(self, example2_instance):
        """The pool initializer must not auto-resolve its own engine: a
        session pinned to rows runs its worker processes on rows too."""
        from repro.olap import parallel as parallel_module

        try:
            parallel_module._initialize_worker(example2_instance, "rows")
            assert parallel_module._WORKER_EVALUATOR.engine == "rows"
            parallel_module._initialize_worker(example2_instance, "columnar")
            assert parallel_module._WORKER_EVALUATOR.engine == "columnar"
        finally:
            parallel_module._WORKER_EVALUATOR = None

    def test_planner_prices_scratch_with_engine_multiplier(self, example2_instance):
        from repro.olap.session import OLAPSession
        from repro.olap.operations import Slice
        from tests.conftest import make_sites_query

        def scratch_cost(engine):
            session = OLAPSession(example2_instance, engine=engine, cache_capacity=0)
            query = make_sites_query()
            session.execute(query)
            plan = session.planner.plan(query, Slice("dage", Literal(35)),
                                        Slice("dage", Literal(35)).apply(query))
            by_name = {candidate.strategy: candidate for candidate in plan.candidates}
            return by_name["scratch"].cost

        rows_cost = scratch_cost("rows")
        columnar_cost = scratch_cost("columnar")
        assert columnar_cost < rows_cost
        assert columnar_cost == pytest.approx(
            1.0 + COLUMNAR_COST_MULTIPLIER * (rows_cost - 1.0)
        )
