"""Unit tests for aggregation functions and their registry."""

import pytest

from repro.errors import AggregationError
from repro.algebra.aggregates import (
    AVG,
    COUNT,
    COUNT_DISTINCT,
    MAX,
    MIN,
    SUM,
    AggregateFunction,
    AggregateRegistry,
    default_registry,
    get_aggregate,
)
from repro.rdf import Literal


class TestStandardAggregates:
    def test_count(self):
        assert COUNT([1, 1, 2]) == 3
        assert COUNT(["a", "b"]) == 2

    def test_count_distinct(self):
        assert COUNT_DISTINCT([1, 1, 2]) == 2

    def test_sum_avg_min_max(self):
        values = [10, 20, 30]
        assert SUM(values) == 60
        assert AVG(values) == pytest.approx(20.0)
        assert MIN(values) == 10
        assert MAX(values) == 30

    def test_aggregates_accept_rdf_literals(self):
        values = [Literal(100), Literal(120)]
        assert SUM(values) == 220
        assert AVG(values) == pytest.approx(110.0)
        assert COUNT(values) == 2

    def test_empty_bag_is_undefined(self):
        for aggregate in (COUNT, SUM, AVG, MIN, MAX, COUNT_DISTINCT):
            with pytest.raises(AggregationError):
                aggregate([])

    def test_numeric_only_aggregates_reject_text(self):
        with pytest.raises(AggregationError):
            SUM(["not a number"])
        with pytest.raises(AggregationError):
            AVG([Literal("Madrid")])

    def test_min_max_work_on_strings(self):
        assert MIN(["b", "a", "c"]) == "a"
        assert MAX(["b", "a", "c"]) == "c"

    def test_boolean_values_count_as_integers(self):
        assert SUM([True, True, False]) == 2


class TestDistributivity:
    def test_distributive_flags(self):
        assert COUNT.distributive and SUM.distributive and MIN.distributive and MAX.distributive
        assert not AVG.distributive
        assert not COUNT_DISTINCT.distributive

    def test_combine_for_distributive_functions(self):
        # sum of partial sums, count combined by summing partial counts.
        assert SUM.combine([10, 20]) == 30
        assert COUNT.combine([2, 3]) == 5
        assert MIN.combine([4, 2, 9]) == 2
        assert MAX.combine([4, 2, 9]) == 9

    def test_combine_rejected_for_non_distributive(self):
        with pytest.raises(AggregationError):
            AVG.combine([10, 20])

    def test_combine_matches_direct_aggregation_on_disjoint_bags(self):
        left = [1, 2, 3]
        right = [10, 20]
        assert SUM.combine([SUM(left), SUM(right)]) == SUM(left + right)
        assert COUNT.combine([COUNT(left), COUNT(right)]) == COUNT(left + right)
        assert MIN.combine([MIN(left), MIN(right)]) == MIN(left + right)


class TestRegistry:
    def test_default_registry_contains_standard_functions(self):
        registry = default_registry()
        for name in ("count", "count_distinct", "sum", "avg", "min", "max"):
            assert name in registry
        assert len(registry.names()) >= 6

    def test_lookup_is_case_insensitive(self):
        assert default_registry().get("SUM") is SUM

    def test_unknown_aggregate(self):
        with pytest.raises(AggregationError):
            default_registry().get("median")

    def test_register_custom_aggregate(self):
        registry = AggregateRegistry()
        median = AggregateFunction("median", lambda values: sorted(values)[len(values) // 2], distributive=False)
        registry.register(median)
        assert registry.get("median")([3, 1, 2]) == 2

    def test_duplicate_registration_requires_replace(self):
        registry = AggregateRegistry()
        clone = AggregateFunction("sum", lambda values: 0, distributive=True)
        with pytest.raises(AggregationError):
            registry.register(clone)
        registry.register(clone, replace=True)
        assert registry.get("sum")([1, 2]) == 0

    def test_get_aggregate_coercion(self):
        assert get_aggregate("avg") is AVG
        assert get_aggregate(SUM) is SUM
        with pytest.raises(AggregationError):
            get_aggregate(42)
