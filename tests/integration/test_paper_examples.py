"""Integration tests replaying the paper's narrative end to end.

Each test walks one of the paper's worked examples through the full public
API — base graph → analytical schema → AnS instance → analytical query →
OLAP transformation → rewriting — and checks the exact values the paper
states.
"""

import pytest

from repro.rdf import EX, Graph, Literal, RDF, Triple
from repro.analytics import AnalyticalQueryEvaluator, materialize_instance
from repro.datagen.blogger import blogger_schema, sites_per_blogger_query, words_per_blogger_query
from repro.datagen.videos import video_schema, views_per_url_query
from repro.olap import Cube, Dice, DrillIn, DrillOut, OLAPSession, Slice

RDF_TYPE = RDF.term("type")


class TestExample1And2ThroughTheSchema:
    """Example 1/2 executed on a base graph through the Figure 1 AnS."""

    @pytest.fixture()
    def base_graph(self) -> Graph:
        graph = Graph()
        users = {
            "user1": (28, "Madrid", ["Bill", "William"]),
            "user3": (35, "NY", ["Chen"]),
            "user4": (35, "NY", ["Omar"]),
        }
        for name, (age, city, aliases) in users.items():
            user = EX.term(name)
            graph.add(Triple(user, RDF_TYPE, EX.Blogger))
            graph.add(Triple(user, EX.hasAge, Literal(age)))
            graph.add(Triple(user, EX.livesIn, EX.term(city)))
            graph.add(Triple(EX.term(city), RDF_TYPE, EX.City))
            for alias in aliases:
                graph.add(Triple(user, EX.identifiedBy, Literal(alias)))
        postings = [("p1", "user1", "s1"), ("p2", "user1", "s1"), ("p3", "user1", "s2"),
                    ("p4", "user3", "s2"), ("p5", "user4", "s3")]
        for post_name, author, site in postings:
            post = EX.term(post_name)
            graph.add(Triple(post, RDF_TYPE, EX.BlogPost))
            graph.add(Triple(EX.term(author), EX.wrotePost, post))
            graph.add(Triple(post, EX.postedOn, EX.term(site)))
            graph.add(Triple(EX.term(site), RDF_TYPE, EX.Site))
        return graph

    def test_full_pipeline_reproduces_example2(self, base_graph):
        schema = blogger_schema()
        instance = materialize_instance(schema, base_graph)
        session = OLAPSession(instance, schema)
        query = sites_per_blogger_query(schema)
        cube = session.execute(query)
        assert cube.cell(Literal(28), EX.term("Madrid")) == 3
        assert cube.cell(Literal(35), EX.term("NY")) == 2
        assert len(cube) == 2

    def test_example3_operations_on_the_example1_cube(self, base_graph):
        schema = blogger_schema()
        instance = materialize_instance(schema, base_graph)
        session = OLAPSession(instance, schema)
        query = sites_per_blogger_query(schema)
        session.execute(query)

        sliced = session.transform(query, Slice("dage", Literal(35)), strategy="rewrite")
        assert sliced.cells() == {(Literal(35), EX.term("NY")): 2}

        diced = session.transform(
            query, Dice({"dage": [Literal(28)], "dcity": [EX.term("Madrid"), EX.term("Kyoto")]}),
            strategy="rewrite",
        )
        assert diced.cells() == {(Literal(28), EX.term("Madrid")): 3}

        drilled_out = session.transform(query, DrillOut("dage"), strategy="rewrite")
        assert drilled_out.cell(EX.term("Madrid")) == 3
        assert drilled_out.cell(EX.term("NY")) == 2

        # DRILL-IN on dage applied to Q_DRILL-OUT reproduces the cells of Q.
        refined = session.transform(drilled_out.query.name, DrillIn("dage"), strategy="scratch")
        original = session.materialized(query).answer
        assert {frozenset(k) for k in refined.cells()} == {
            frozenset(row[:-1]) for row in original.relation
        }


class TestExample4And5:
    def test_dice_and_drill_out_on_word_counts(self, example4_instance):
        session = OLAPSession(example4_instance)
        query = words_per_blogger_query()
        cube = session.execute(query)
        assert cube.cell(Literal(28), EX.term("Madrid")) == pytest.approx(210.0)

        diced = session.transform(query, Dice({"dage": (20, 30)}), strategy="rewrite")
        assert diced.cells() == {(Literal(28), EX.term("Madrid")): pytest.approx(210.0)}

        comparison = session.compare_strategies(query, DrillOut("dage"))
        assert comparison["equal"]

    def test_avg_drill_out_requires_pres_not_ans(self, example4_instance):
        """avg is non-distributive: the rewriting must come from pres(Q)."""
        from repro.olap.rewriting import drill_out_from_answer_naive
        from repro.errors import RewritingError

        session = OLAPSession(example4_instance)
        query = words_per_blogger_query()
        session.execute(query)
        transformed = DrillOut("dage").apply(query)
        with pytest.raises(RewritingError):
            drill_out_from_answer_naive(session.materialized(query).answer, transformed)


class TestExample6Figure3:
    def test_drill_in_pipeline_from_base_graph(self, figure3_instance):
        # Figure 3's table *is* the instance; query and drill in through a session.
        session = OLAPSession(figure3_instance)
        query = views_per_url_query()
        cube = session.execute(query)
        assert cube.cell(Literal("URL1")) == 100
        assert cube.cell(Literal("URL2")) == 100

        refined = session.transform(query, DrillIn("d3"), strategy="rewrite")
        assert refined.cells() == {
            (Literal("URL1"), Literal("firefox")): 100,
            (Literal("URL2"), Literal("chrome")): 100,
        }

    def test_video_schema_materialization_matches_direct_instance(self, figure3_instance):
        schema = video_schema()
        instance = materialize_instance(schema, figure3_instance)
        evaluator = AnalyticalQueryEvaluator(instance)
        answer = evaluator.answer(views_per_url_query(schema))
        cells = {row[0]: row[1] for row in answer.relation}
        assert cells == {Literal("URL1"): 100, Literal("URL2"): 100}
