"""Golden-cube regression suite.

Every paper example and both datagen workloads have their expected cubes
serialized under ``tests/golden/*.json``; each case is answered through
**every** answering strategy the session offers (the cost-based planner,
the forced rewriting path, forced from-scratch evaluation and the auto
fallback) and must reproduce the golden cells exactly — same cell keys,
same measures (numeric measures within 1e-9).

Regenerating the fixtures after an intended cube-semantics change::

    python -m pytest tests/integration/test_golden_cubes.py --update-golden

(Only the from-scratch strategy writes, so a broken rewrite can never
overwrite a golden file with its own wrong answer.)
"""

import json
import os

import pytest

from repro.rdf import EX, Literal, RDF, Triple
from repro.olap import Dice, DrillIn, DrillOut, OLAPSession, Slice
from repro.persistence import _decode_cell, _encode_cell

from tests.conftest import make_sites_query, make_views_query, make_words_query

RDF_TYPE = RDF.term("type")

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "golden")

#: Strategies every transform case must reproduce the golden cube under.
STRATEGIES = ("scratch", "rewrite", "auto", "plan")


# ---------------------------------------------------------------------------
# case definitions: name -> (fixture name, builder(session, strategy) -> Cube)
# ---------------------------------------------------------------------------


def _root(query_factory):
    def build(session, strategy):
        return session.execute(query_factory())

    build.query_factory = query_factory
    build.operation = None
    return build


def _transform(query_factory, operation):
    def build(session, strategy):
        query = query_factory()
        session.execute(query)
        return session.transform(query, operation, strategy=strategy)

    build.query_factory = query_factory
    build.operation = operation
    return build


def _blogger_query(dataset):
    from repro.datagen.blogger import sites_per_blogger_query

    return sites_per_blogger_query(dataset.schema)


def _video_query(dataset):
    from repro.datagen.videos import views_per_url_query

    return views_per_url_query(dataset.schema)


CASES = {
    # paper worked examples -------------------------------------------------
    "example2_sites_root": ("example2_instance", _root(make_sites_query)),
    "example2_slice_age35": (
        "example2_instance",
        _transform(make_sites_query, Slice("dage", Literal(35))),
    ),
    "example2_dice_madrid": (
        "example2_instance",
        _transform(
            make_sites_query,
            Dice({"dage": [Literal(28)], "dcity": [EX.term("Madrid"), EX.term("Kyoto")]}),
        ),
    ),
    "example2_drillout_age": (
        "example2_instance",
        _transform(make_sites_query, DrillOut("dage")),
    ),
    "example4_words_root": ("example4_instance", _root(make_words_query)),
    "example4_dice_range": (
        "example4_instance",
        _transform(make_words_query, Dice({"dage": (20, 30)})),
    ),
    "figure3_views_root": ("figure3_instance", _root(make_views_query)),
    "figure3_drillin_browser": (
        "figure3_instance",
        _transform(make_views_query, DrillIn("d3")),
    ),
}

def _example2_update_batch(instance):
    """Scripted update: one new 35/NY blogger posting on s1, one post moves."""
    user5 = EX.term("user5")
    post = EX.term("p6")
    instance.add(Triple(user5, RDF_TYPE, EX.Blogger))
    instance.add(Triple(user5, EX.hasAge, Literal(35)))
    instance.add(Triple(user5, EX.livesIn, EX.term("NY")))
    instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
    instance.add(Triple(user5, EX.wrotePost, post))
    instance.add(Triple(post, EX.postedOn, EX.term("s1")))
    instance.remove(Triple(EX.term("p4"), EX.postedOn, EX.term("s2")))
    instance.add(Triple(EX.term("p4"), EX.postedOn, EX.term("s3")))


def _blogger_workload_update_batch(instance):
    """Scripted update on the generated blogger instance: two new bloggers
    (one landing in an existing group, one opening a new city) and one
    removed authorship."""
    for tag, age, city, site in (
        ("upd_user1", 31, "Madrid", "site_0"),
        ("upd_user2", 77, "Reykjavik", "site_1"),
    ):
        user = EX.term(tag)
        post = EX.term(f"{tag}_post")
        instance.add(Triple(user, RDF_TYPE, EX.Blogger))
        instance.add(Triple(user, EX.hasAge, Literal(age)))
        instance.add(Triple(user, EX.livesIn, EX.term(city)))
        instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
        instance.add(Triple(user, EX.wrotePost, post))
        instance.add(Triple(post, EX.postedOn, EX.term(site)))
    authorships = sorted(
        (triple for triple in instance if triple.predicate == EX.wrotePost),
        key=repr,
    )
    instance.remove(authorships[0])


#: Update cases: name -> (fixture, query builder, scripted update batch).
#: Each case executes the query, applies the batch, and re-answers; the
#: warmed session must take the refresh path and reproduce the golden cells.
UPDATE_CASES = {
    "example2_sites_after_update": (
        "example2_instance",
        lambda dataset: make_sites_query(),
        _example2_update_batch,
    ),
    "blogger_workload_after_update": (
        "small_blogger_dataset",
        _blogger_query,
        _blogger_workload_update_batch,
    ),
}


#: Datagen workload cases: name -> (dataset fixture, query builder, operation or None)
WORKLOAD_CASES = {
    "blogger_workload_root": ("small_blogger_dataset", _blogger_query, None),
    "blogger_workload_dice": (
        "small_blogger_dataset",
        _blogger_query,
        Dice({"dage": (20, 40)}),
    ),
    "blogger_workload_drillout": (
        "small_blogger_dataset",
        _blogger_query,
        DrillOut("dage"),
    ),
    "video_workload_root": ("small_video_dataset", _video_query, None),
    "video_workload_drillin": ("small_video_dataset", _video_query, DrillIn("d3")),
}


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def _cube_payload(cube):
    cells = [
        {"key": [_encode_cell(value) for value in key], "value": _encode_cell(measure)}
        for key, measure in cube.cells().items()
    ]
    cells.sort(key=lambda cell: cell["key"])
    return {
        "dimensions": list(cube.dimensions),
        "measure": cube.measure_column,
        "cells": cells,
    }


def _golden_path(name):
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def _write_golden(name, cube):
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    with open(_golden_path(name), "w", encoding="utf-8") as handle:
        json.dump(_cube_payload(cube), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _check_against_golden(name, cube):
    path = _golden_path(name)
    assert os.path.exists(path), (
        f"golden fixture {path} is missing; run pytest with --update-golden to create it"
    )
    with open(path, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert list(cube.dimensions) == golden["dimensions"]
    assert cube.measure_column == golden["measure"]

    actual = _cube_payload(cube)
    golden_cells = {tuple(cell["key"]): cell["value"] for cell in golden["cells"]}
    actual_cells = {tuple(cell["key"]): cell["value"] for cell in actual["cells"]}
    assert set(actual_cells) == set(golden_cells), (
        f"{name}: cell keys diverge from golden "
        f"(missing: {sorted(set(golden_cells) - set(actual_cells))[:5]}, "
        f"extra: {sorted(set(actual_cells) - set(golden_cells))[:5]})"
    )
    for key, encoded in golden_cells.items():
        expected = _decode_cell(encoded)
        observed = _decode_cell(actual_cells[key])
        if isinstance(expected, (int, float)) and isinstance(observed, (int, float)):
            assert observed == pytest.approx(expected, abs=1e-9), f"{name}: cell {key}"
        else:
            assert observed == expected, f"{name}: cell {key}"


# ---------------------------------------------------------------------------
# the tests
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", sorted(CASES))
def test_paper_example_golden_cubes(name, strategy, request, update_golden):
    fixture_name, build = CASES[name]
    instance = request.getfixturevalue(fixture_name)
    session = OLAPSession(instance)
    cube = build(session, strategy)
    if update_golden:
        if strategy == "scratch":
            _write_golden(name, cube)
        return
    _check_against_golden(name, cube)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", sorted(WORKLOAD_CASES))
def test_workload_golden_cubes(name, strategy, request, update_golden):
    fixture_name, query_builder, operation = WORKLOAD_CASES[name]
    dataset = request.getfixturevalue(fixture_name)
    session = OLAPSession(dataset.instance, dataset.schema)
    query = query_builder(dataset)
    if operation is None:
        cube = session.execute(query)
    else:
        session.execute(query)
        cube = session.transform(query, operation, strategy=strategy)
    if update_golden:
        if strategy == "scratch":
            _write_golden(name, cube)
        return
    _check_against_golden(name, cube)


@pytest.mark.parametrize("mode", ["refresh", "scratch"])
@pytest.mark.parametrize("name", sorted(UPDATE_CASES))
def test_after_update_golden_cubes(name, mode, request, update_golden):
    """Apply a scripted update batch; the refreshed cube must equal golden.

    ``scratch`` answers the query on the updated instance with a cold
    session (and is the only mode that writes fixtures, so a broken refresh
    can never canonize its own wrong cells); ``refresh`` warms a session
    first, applies the batch, and re-answers — asserting the session really
    took the delta-patching path rather than recomputing.
    """
    fixture_name, query_builder, update_batch = UPDATE_CASES[name]
    fixture = request.getfixturevalue(fixture_name)
    if hasattr(fixture, "instance"):
        instance, schema = fixture.instance.copy(), fixture.schema
    else:
        instance, schema = fixture.copy(), None
    query = query_builder(fixture)

    if mode == "scratch":
        update_batch(instance)
        cube = OLAPSession(instance, schema).execute(query)
    else:
        # Row engine: this mode must *exercise the delta-patching path*;
        # the columnar engine's cheaper scratch pricing legitimately
        # recomputes at this fixture scale (row/columnar agreement is
        # covered by the columnar differential oracle).
        session = OLAPSession(instance, schema, engine="rows")
        session.execute(query)
        update_batch(instance)
        cube = session.execute(query)
        assert session.history[-1].strategy == "refresh"
        assert session.cache.stats.refreshes == 1
    if update_golden:
        if mode == "scratch":
            _write_golden(name, cube)
        return
    _check_against_golden(name, cube)


@pytest.mark.parametrize("workers,shards", [(1, 3), (2, 3), (2, 7)])
@pytest.mark.parametrize("name", sorted(CASES))
def test_paper_example_golden_cubes_parallel(name, workers, shards, request, update_golden):
    """The partitioned engine reproduces every golden cube cell for cell.

    The final (transformed) query of each case is answered directly by the
    shard-parallel executor — per-shard evaluation plus partial-aggregate
    merge — and must match the committed fixture, at several worker/shard
    configurations including the workers=1 merge-only degenerate.
    """
    if update_golden:
        return  # fixtures are written by the scratch strategy only
    from repro.analytics.evaluator import AnalyticalQueryEvaluator
    from repro.olap import Cube, ParallelExecutor

    fixture_name, build = CASES[name]
    instance = request.getfixturevalue(fixture_name)
    query = build.query_factory()
    if build.operation is not None:
        query = build.operation.apply(query)
    with ParallelExecutor(
        AnalyticalQueryEvaluator(instance),
        workers=workers,
        shard_count=shards,
        backend="thread" if workers > 1 else "serial",
    ) as executor:
        cube = Cube(executor.answer(query), query)
    _check_against_golden(name, cube)


@pytest.mark.parametrize("name", sorted(WORKLOAD_CASES))
def test_workload_golden_cubes_parallel(name, request, update_golden):
    """Same as above for the datagen workload cases (one configuration)."""
    if update_golden:
        return
    from repro.analytics.evaluator import AnalyticalQueryEvaluator
    from repro.olap import Cube, ParallelExecutor

    fixture_name, query_builder, operation = WORKLOAD_CASES[name]
    dataset = request.getfixturevalue(fixture_name)
    query = query_builder(dataset)
    if operation is not None:
        query = operation.apply(query)
    with ParallelExecutor(
        AnalyticalQueryEvaluator(dataset.instance), workers=2, shard_count=5, backend="thread"
    ) as executor:
        cube = Cube(executor.answer(query), query)
    _check_against_golden(name, cube)


def test_golden_fixtures_exist():
    """Every case has its committed fixture (catches forgotten --update-golden)."""
    for name in list(CASES) + list(WORKLOAD_CASES) + list(UPDATE_CASES):
        assert os.path.exists(_golden_path(name)), f"missing golden fixture for {name}"
