"""Golden-cube regression suite.

Every paper example and both datagen workloads have their expected cubes
serialized under ``tests/golden/*.json``; each case is answered through
**every** answering strategy the session offers (the cost-based planner,
the forced rewriting path, forced from-scratch evaluation and the auto
fallback) and must reproduce the golden cells exactly — same cell keys,
same measures (numeric measures within 1e-9).

Regenerating the fixtures after an intended cube-semantics change::

    python -m pytest tests/integration/test_golden_cubes.py --update-golden

(Only the from-scratch strategy writes, so a broken rewrite can never
overwrite a golden file with its own wrong answer.)
"""

import json
import os

import pytest

from repro.rdf import EX, Literal, RDF, Triple
from repro.olap import Dice, DimensionHierarchy, DrillIn, DrillOut, OLAPSession, RollUp, Slice
from repro.persistence import _decode_cell, _encode_cell

from tests.conftest import make_sites_query, make_views_query, make_words_query

RDF_TYPE = RDF.term("type")

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "golden")

#: Strategies every transform case must reproduce the golden cube under.
STRATEGIES = ("scratch", "rewrite", "auto", "plan")


# ---------------------------------------------------------------------------
# case definitions: name -> (fixture name, builder(session, strategy) -> Cube)
# ---------------------------------------------------------------------------


def _root(query_factory):
    def build(session, strategy):
        return session.execute(query_factory())

    build.query_factory = query_factory
    build.operation = None
    return build


def _transform(query_factory, operation):
    def build(session, strategy):
        query = query_factory()
        session.execute(query)
        return session.transform(query, operation, strategy=strategy)

    build.query_factory = query_factory
    build.operation = operation
    return build


def _blogger_query(dataset):
    from repro.datagen.blogger import sites_per_blogger_query

    return sites_per_blogger_query(dataset.schema)


def _video_query(dataset):
    from repro.datagen.videos import views_per_url_query

    return views_per_url_query(dataset.schema)


def _retail_query(dataset):
    from repro.datagen.retail import revenue_query

    return revenue_query(dataset.schema)


AGE_BANDS = DimensionHierarchy.banded(
    [(0, 29, "young"), (30, 120, "senior")], name="age bands"
)


def _retail_city_rollup(dataset):
    from repro.datagen.retail import city_region_hierarchy

    return RollUp("dcity", city_region_hierarchy(dataset.config))


CASES = {
    # paper worked examples -------------------------------------------------
    "example2_sites_root": ("example2_instance", _root(make_sites_query)),
    "example2_slice_age35": (
        "example2_instance",
        _transform(make_sites_query, Slice("dage", Literal(35))),
    ),
    "example2_dice_madrid": (
        "example2_instance",
        _transform(
            make_sites_query,
            Dice({"dage": [Literal(28)], "dcity": [EX.term("Madrid"), EX.term("Kyoto")]}),
        ),
    ),
    "example2_drillout_age": (
        "example2_instance",
        _transform(make_sites_query, DrillOut("dage")),
    ),
    "example4_words_root": ("example4_instance", _root(make_words_query)),
    "example4_dice_range": (
        "example4_instance",
        _transform(make_words_query, Dice({"dage": (20, 30)})),
    ),
    "figure3_views_root": ("figure3_instance", _root(make_views_query)),
    "figure3_drillin_browser": (
        "figure3_instance",
        _transform(make_views_query, DrillIn("d3")),
    ),
}

def _example2_update_batch(instance):
    """Scripted update: one new 35/NY blogger posting on s1, one post moves."""
    user5 = EX.term("user5")
    post = EX.term("p6")
    instance.add(Triple(user5, RDF_TYPE, EX.Blogger))
    instance.add(Triple(user5, EX.hasAge, Literal(35)))
    instance.add(Triple(user5, EX.livesIn, EX.term("NY")))
    instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
    instance.add(Triple(user5, EX.wrotePost, post))
    instance.add(Triple(post, EX.postedOn, EX.term("s1")))
    instance.remove(Triple(EX.term("p4"), EX.postedOn, EX.term("s2")))
    instance.add(Triple(EX.term("p4"), EX.postedOn, EX.term("s3")))


def _blogger_workload_update_batch(instance):
    """Scripted update on the generated blogger instance: two new bloggers
    (one landing in an existing group, one opening a new city) and one
    removed authorship."""
    for tag, age, city, site in (
        ("upd_user1", 31, "Madrid", "site_0"),
        ("upd_user2", 77, "Reykjavik", "site_1"),
    ):
        user = EX.term(tag)
        post = EX.term(f"{tag}_post")
        instance.add(Triple(user, RDF_TYPE, EX.Blogger))
        instance.add(Triple(user, EX.hasAge, Literal(age)))
        instance.add(Triple(user, EX.livesIn, EX.term(city)))
        instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
        instance.add(Triple(user, EX.wrotePost, post))
        instance.add(Triple(post, EX.postedOn, EX.term(site)))
    authorships = sorted(
        (triple for triple in instance if triple.predicate == EX.wrotePost),
        key=repr,
    )
    instance.remove(authorships[0])


#: Update cases: name -> (fixture, query builder, scripted update batch).
#: Each case executes the query, applies the batch, and re-answers; the
#: warmed session must take the refresh path and reproduce the golden cells.
UPDATE_CASES = {
    "example2_sites_after_update": (
        "example2_instance",
        lambda dataset: make_sites_query(),
        _example2_update_batch,
    ),
    "blogger_workload_after_update": (
        "small_blogger_dataset",
        _blogger_query,
        _blogger_workload_update_batch,
    ),
}


#: Hierarchy-lattice cases: name -> (fixture, query builder, operation builder).
#: Kept out of CASES because rolled queries are (by design) outside the
#: shard-parallel executor's supported fragment.
ROLLUP_CASES = {
    "example2_agebands_rollup": (
        "example2_instance",
        lambda fixture: make_sites_query(),
        lambda fixture: RollUp("dage", AGE_BANDS),
    ),
    "blogger_workload_agebands_rollup": (
        "small_blogger_dataset",
        _blogger_query,
        lambda fixture: RollUp("dage", AGE_BANDS),
    ),
    "retail_workload_region_rollup": (
        "small_retail_dataset",
        _retail_query,
        _retail_city_rollup,
    ),
}


def _retail_update_batch(instance):
    """Scripted retail update: two new sales at existing stores (one typed
    only via a subclass, so its effect differs between plain and entailed
    sessions), one new ρdf axiom, and one removed amount."""
    from repro.rdf import RDFS

    for tag, sale_type, store, product, amount in (
        ("upd_sale1", EX.Sale, "store/s0", "product/p1", 111),
        ("upd_sale2", EX.OnlineSale, "store/s2", "product/p3", 77),
    ):
        sale = EX.term(f"sale/{tag}")
        instance.add(Triple(sale, RDF_TYPE, sale_type))
        instance.add(Triple(sale, EX.atStore, EX.term(store)))
        instance.add(Triple(sale, EX.ofProduct, EX.term(product)))
        instance.add(Triple(sale, EX.hasAmount, Literal(amount)))
    # A schema-triple delta: re-saturation must pick the new rule up.
    instance.add(Triple(EX.FlashSale, RDFS.term("subClassOf"), EX.OnlineSale))
    flash = EX.term("sale/upd_flash")
    instance.add(Triple(flash, RDF_TYPE, EX.FlashSale))
    instance.add(Triple(flash, EX.atStore, EX.term("store/s1")))
    instance.add(Triple(flash, EX.ofProduct, EX.term("product/p0")))
    instance.add(Triple(flash, EX.hasAmount, Literal(55)))
    amounts = sorted(
        (triple for triple in instance if triple.predicate == EX.hasAmount),
        key=repr,
    )
    instance.remove(amounts[0])


#: Entailment cases: every mode must reproduce cells written by the
#: *pre-saturated plain scratch* oracle — a broken saturation sync or a
#: wrong rewrite expansion can never canonize its own answer.
ENTAILED_CASES = {
    "retail_workload_root_entailed": ("small_retail_dataset", _retail_query, None),
    "retail_workload_region_rollup_entailed": (
        "small_retail_dataset",
        _retail_query,
        _retail_city_rollup,
    ),
}

ENTAILMENT_MODES = ("saturate", "rewrite")


def _presaturated_oracle_cube(instance, query):
    from repro.rdf import Graph
    from repro.rdf.reasoning import saturate
    from repro.analytics.evaluator import AnalyticalQueryEvaluator
    from repro.olap import Cube

    closure = Graph(name="golden+rdfs")
    closure.add_all(instance)
    saturate(closure, in_place=True)
    return Cube(AnalyticalQueryEvaluator(closure).answer(query), query)


#: Datagen workload cases: name -> (dataset fixture, query builder, operation or None)
WORKLOAD_CASES = {
    "blogger_workload_root": ("small_blogger_dataset", _blogger_query, None),
    "blogger_workload_dice": (
        "small_blogger_dataset",
        _blogger_query,
        Dice({"dage": (20, 40)}),
    ),
    "blogger_workload_drillout": (
        "small_blogger_dataset",
        _blogger_query,
        DrillOut("dage"),
    ),
    "video_workload_root": ("small_video_dataset", _video_query, None),
    "video_workload_drillin": ("small_video_dataset", _video_query, DrillIn("d3")),
}


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def _cube_payload(cube):
    cells = [
        {"key": [_encode_cell(value) for value in key], "value": _encode_cell(measure)}
        for key, measure in cube.cells().items()
    ]
    cells.sort(key=lambda cell: cell["key"])
    return {
        "dimensions": list(cube.dimensions),
        "measure": cube.measure_column,
        "cells": cells,
    }


def _golden_path(name):
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def _write_golden(name, cube):
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    with open(_golden_path(name), "w", encoding="utf-8") as handle:
        json.dump(_cube_payload(cube), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _check_against_golden(name, cube):
    path = _golden_path(name)
    assert os.path.exists(path), (
        f"golden fixture {path} is missing; run pytest with --update-golden to create it"
    )
    with open(path, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert list(cube.dimensions) == golden["dimensions"]
    assert cube.measure_column == golden["measure"]

    actual = _cube_payload(cube)
    golden_cells = {tuple(cell["key"]): cell["value"] for cell in golden["cells"]}
    actual_cells = {tuple(cell["key"]): cell["value"] for cell in actual["cells"]}
    assert set(actual_cells) == set(golden_cells), (
        f"{name}: cell keys diverge from golden "
        f"(missing: {sorted(set(golden_cells) - set(actual_cells))[:5]}, "
        f"extra: {sorted(set(actual_cells) - set(golden_cells))[:5]})"
    )
    for key, encoded in golden_cells.items():
        expected = _decode_cell(encoded)
        observed = _decode_cell(actual_cells[key])
        if isinstance(expected, (int, float)) and isinstance(observed, (int, float)):
            assert observed == pytest.approx(expected, abs=1e-9), f"{name}: cell {key}"
        else:
            assert observed == expected, f"{name}: cell {key}"


# ---------------------------------------------------------------------------
# the tests
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", sorted(CASES))
def test_paper_example_golden_cubes(name, strategy, request, update_golden):
    fixture_name, build = CASES[name]
    instance = request.getfixturevalue(fixture_name)
    session = OLAPSession(instance)
    cube = build(session, strategy)
    if update_golden:
        if strategy == "scratch":
            _write_golden(name, cube)
        return
    _check_against_golden(name, cube)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", sorted(WORKLOAD_CASES))
def test_workload_golden_cubes(name, strategy, request, update_golden):
    fixture_name, query_builder, operation = WORKLOAD_CASES[name]
    dataset = request.getfixturevalue(fixture_name)
    session = OLAPSession(dataset.instance, dataset.schema)
    query = query_builder(dataset)
    if operation is None:
        cube = session.execute(query)
    else:
        session.execute(query)
        cube = session.transform(query, operation, strategy=strategy)
    if update_golden:
        if strategy == "scratch":
            _write_golden(name, cube)
        return
    _check_against_golden(name, cube)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", sorted(ROLLUP_CASES))
def test_rollup_golden_cubes(name, strategy, request, update_golden):
    """Every answering strategy reproduces the golden *rolled* cube."""
    fixture_name, query_builder, operation_builder = ROLLUP_CASES[name]
    fixture = request.getfixturevalue(fixture_name)
    if hasattr(fixture, "instance"):
        instance, schema = fixture.instance, fixture.schema
    else:
        instance, schema = fixture, None
    session = OLAPSession(instance, schema)
    query = query_builder(fixture)
    session.execute(query)
    cube = session.transform(query, operation_builder(fixture), strategy=strategy)
    if update_golden:
        if strategy == "scratch":
            _write_golden(name, cube)
        return
    _check_against_golden(name, cube)


@pytest.mark.parametrize("mode", ["warm", "scratch"])
def test_rollup_after_update_golden_cubes(mode, small_retail_dataset, update_golden):
    """A rolled cache entry survives an instance update correctly: whether
    the session invalidates it or patches it, the re-served rolled cube
    must equal a cold evaluation on the updated instance."""
    name = "retail_workload_rollup_after_update"
    instance = small_retail_dataset.instance.copy()
    query = _retail_query(small_retail_dataset)
    operation = _retail_city_rollup(small_retail_dataset)

    if mode == "scratch":
        _retail_update_batch(instance)
        session = OLAPSession(instance, small_retail_dataset.schema)
        session.execute(query)
        cube = session.transform(query, operation, strategy="scratch")
    else:
        session = OLAPSession(instance, small_retail_dataset.schema)
        session.execute(query)
        stale = session.transform(query, operation)
        _retail_update_batch(instance)
        cube = session.transform(query, operation)
        assert cube.query.name == stale.query.name
    if update_golden:
        if mode == "scratch":
            _write_golden(name, cube)
        return
    _check_against_golden(name, cube)


@pytest.mark.parametrize("mode", ENTAILMENT_MODES)
@pytest.mark.parametrize("name", sorted(ENTAILED_CASES))
def test_entailed_golden_cubes(name, mode, request, update_golden):
    """Both entailment regimes reproduce cells written by the pre-saturated
    plain scratch oracle (which is also the only writer)."""
    fixture_name, query_builder, operation_builder = ENTAILED_CASES[name]
    dataset = request.getfixturevalue(fixture_name)
    query = query_builder(dataset)
    target_query = query
    if operation_builder is not None:
        target_query = operation_builder(dataset).apply(query)
    if update_golden:
        if mode == ENTAILMENT_MODES[0]:
            _write_golden(name, _presaturated_oracle_cube(dataset.instance, target_query))
        return
    session = OLAPSession(dataset.instance, dataset.schema, entailment=mode)
    if operation_builder is None:
        cube = session.execute(query)
    else:
        session.execute(query)
        cube = session.transform(query, operation_builder(dataset))
    _check_against_golden(name, cube)


@pytest.mark.parametrize("mode", ENTAILMENT_MODES)
def test_entailed_after_update_golden_cubes(mode, small_retail_dataset, update_golden):
    """A warmed entailed session absorbs an update batch that includes a
    schema-triple delta (new ``rdfs:subClassOf`` axiom) and reproduces the
    oracle's cells on the updated graph — the saturate mode through its
    closure sync, the rewrite mode through re-expansion."""
    name = "retail_workload_after_update_entailed"
    source = small_retail_dataset.instance.copy()
    query = _retail_query(small_retail_dataset)
    if update_golden:
        if mode == ENTAILMENT_MODES[0]:
            _retail_update_batch(source)
            _write_golden(name, _presaturated_oracle_cube(source, query))
        return
    session = OLAPSession(source, small_retail_dataset.schema, entailment=mode)
    session.execute(query)
    _retail_update_batch(source)
    cube = session.execute(query)
    _check_against_golden(name, cube)


@pytest.mark.parametrize("mode", ["refresh", "scratch"])
@pytest.mark.parametrize("name", sorted(UPDATE_CASES))
def test_after_update_golden_cubes(name, mode, request, update_golden):
    """Apply a scripted update batch; the refreshed cube must equal golden.

    ``scratch`` answers the query on the updated instance with a cold
    session (and is the only mode that writes fixtures, so a broken refresh
    can never canonize its own wrong cells); ``refresh`` warms a session
    first, applies the batch, and re-answers — asserting the session really
    took the delta-patching path rather than recomputing.
    """
    fixture_name, query_builder, update_batch = UPDATE_CASES[name]
    fixture = request.getfixturevalue(fixture_name)
    if hasattr(fixture, "instance"):
        instance, schema = fixture.instance.copy(), fixture.schema
    else:
        instance, schema = fixture.copy(), None
    query = query_builder(fixture)

    if mode == "scratch":
        update_batch(instance)
        cube = OLAPSession(instance, schema).execute(query)
    else:
        # Row engine: this mode must *exercise the delta-patching path*;
        # the columnar engine's cheaper scratch pricing legitimately
        # recomputes at this fixture scale (row/columnar agreement is
        # covered by the columnar differential oracle).
        session = OLAPSession(instance, schema, engine="rows")
        session.execute(query)
        update_batch(instance)
        cube = session.execute(query)
        assert session.history[-1].strategy == "refresh"
        assert session.cache.stats.refreshes == 1
    if update_golden:
        if mode == "scratch":
            _write_golden(name, cube)
        return
    _check_against_golden(name, cube)


@pytest.mark.parametrize("workers,shards", [(1, 3), (2, 3), (2, 7)])
@pytest.mark.parametrize("name", sorted(CASES))
def test_paper_example_golden_cubes_parallel(name, workers, shards, request, update_golden):
    """The partitioned engine reproduces every golden cube cell for cell.

    The final (transformed) query of each case is answered directly by the
    shard-parallel executor — per-shard evaluation plus partial-aggregate
    merge — and must match the committed fixture, at several worker/shard
    configurations including the workers=1 merge-only degenerate.
    """
    if update_golden:
        return  # fixtures are written by the scratch strategy only
    from repro.analytics.evaluator import AnalyticalQueryEvaluator
    from repro.olap import Cube, ParallelExecutor

    fixture_name, build = CASES[name]
    instance = request.getfixturevalue(fixture_name)
    query = build.query_factory()
    if build.operation is not None:
        query = build.operation.apply(query)
    with ParallelExecutor(
        AnalyticalQueryEvaluator(instance),
        workers=workers,
        shard_count=shards,
        backend="thread" if workers > 1 else "serial",
    ) as executor:
        cube = Cube(executor.answer(query), query)
    _check_against_golden(name, cube)


@pytest.mark.parametrize("name", sorted(WORKLOAD_CASES))
def test_workload_golden_cubes_parallel(name, request, update_golden):
    """Same as above for the datagen workload cases (one configuration)."""
    if update_golden:
        return
    from repro.analytics.evaluator import AnalyticalQueryEvaluator
    from repro.olap import Cube, ParallelExecutor

    fixture_name, query_builder, operation = WORKLOAD_CASES[name]
    dataset = request.getfixturevalue(fixture_name)
    query = query_builder(dataset)
    if operation is not None:
        query = operation.apply(query)
    with ParallelExecutor(
        AnalyticalQueryEvaluator(dataset.instance), workers=2, shard_count=5, backend="thread"
    ) as executor:
        cube = Cube(executor.answer(query), query)
    _check_against_golden(name, cube)


def test_golden_fixtures_exist():
    """Every case has its committed fixture (catches forgotten --update-golden)."""
    names = (
        list(CASES)
        + list(WORKLOAD_CASES)
        + list(UPDATE_CASES)
        + list(ROLLUP_CASES)
        + list(ENTAILED_CASES)
        + ["retail_workload_rollup_after_update", "retail_workload_after_update_entailed"]
    )
    for name in names:
        assert os.path.exists(_golden_path(name)), f"missing golden fixture for {name}"
