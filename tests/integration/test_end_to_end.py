"""End-to-end integration tests on generated datasets.

These exercise the whole stack — generators, schema materialization, BGP
evaluation, analytical queries, OLAP session, rewritings — at a size where
multi-valued dimensions, missing values and duplicate measures all actually
occur, and cross-check every rewriting against from-scratch evaluation.
"""

import pytest

from repro.rdf import serialize_ntriples, parse_ntriples
from repro.analytics import AnalyticalQuery, AnalyticalQueryEvaluator
from repro.datagen.blogger import sites_per_blogger_query, words_per_blogger_query
from repro.datagen.generic import generic_query
from repro.datagen.videos import views_per_url_query
from repro.olap import Cube, Dice, DrillIn, DrillOut, OLAPSession, Slice, compose


class TestBloggerEndToEnd:
    def test_all_operations_agree_with_scratch(self, small_blogger_dataset):
        session = OLAPSession(small_blogger_dataset.instance, small_blogger_dataset.schema)
        query = sites_per_blogger_query(small_blogger_dataset.schema)
        cube = session.execute(query)
        assert len(cube) > 0

        ages = sorted(cube.dimension_values("dage"), key=repr)
        cities = sorted(cube.dimension_values("dcity"), key=repr)
        operations = [
            Slice("dage", ages[0]),
            Dice({"dage": ages[: max(1, len(ages) // 2)], "dcity": cities[:2]}),
            Dice({"dage": (20, 35)}),
            DrillOut("dage"),
            DrillOut(["dage", "dcity"]),
        ]
        for operation in operations:
            comparison = session.compare_strategies(query, operation)
            assert comparison["equal"], operation.describe()

    def test_average_query_operations(self, small_blogger_dataset):
        session = OLAPSession(small_blogger_dataset.instance, small_blogger_dataset.schema)
        query = words_per_blogger_query(small_blogger_dataset.schema)
        session.execute(query)
        for operation in (DrillOut("dcity"), Dice({"dage": (25, 45)})):
            assert session.compare_strategies(query, operation)["equal"]

    def test_chained_operations_match_composed_query_from_scratch(self, small_blogger_dataset):
        session = OLAPSession(small_blogger_dataset.instance, small_blogger_dataset.schema)
        query = sites_per_blogger_query(small_blogger_dataset.schema)
        cube = session.execute(query)
        ages = sorted(cube.dimension_values("dage"), key=repr)

        operations = [Dice({"dage": ages[: len(ages) // 2 + 1]}), DrillOut("dcity")]
        # Navigate step by step through the session (each step by rewriting).
        step1 = session.transform(query, operations[0], strategy="rewrite")
        step2 = session.transform(step1.query.name, operations[1], strategy="rewrite")
        # Compose the transformations on the query and evaluate from scratch.
        composed = compose(query, operations)
        evaluator = AnalyticalQueryEvaluator(small_blogger_dataset.instance)
        scratch = Cube(evaluator.answer(composed), composed)
        assert step2.same_cells(scratch)


class TestVideoEndToEnd:
    def test_drill_in_and_slice(self, small_video_dataset):
        session = OLAPSession(small_video_dataset.instance, small_video_dataset.schema)
        query = views_per_url_query(small_video_dataset.schema)
        cube = session.execute(query)
        urls = sorted(cube.dimension_values("d2"), key=repr)
        assert session.compare_strategies(query, DrillIn("d3"))["equal"]
        assert session.compare_strategies(query, Slice("d2", urls[0]))["equal"]

    def test_drill_in_then_dice_on_new_dimension(self, small_video_dataset):
        session = OLAPSession(small_video_dataset.instance, small_video_dataset.schema)
        query = views_per_url_query(small_video_dataset.schema)
        session.execute(query)
        refined = session.transform(query, DrillIn("d3"), strategy="rewrite")
        browsers = sorted(refined.dimension_values("d3"), key=repr)
        rediced = session.transform(refined.query.name, Dice({"d3": browsers[:1]}), strategy="rewrite")
        evaluator = AnalyticalQueryEvaluator(small_video_dataset.instance)
        composed = compose(query, [DrillIn("d3"), Dice({"d3": browsers[:1]})])
        assert rediced.same_cells(Cube(evaluator.answer(composed), composed))


class TestGenericEndToEnd:
    def test_all_aggregates_and_operations(self, small_generic_dataset):
        config = small_generic_dataset.config
        session = OLAPSession(small_generic_dataset.instance, small_generic_dataset.schema)
        for aggregate in ("count", "sum", "avg", "min", "max"):
            query = generic_query(config, aggregate=aggregate, name=f"Q_{aggregate}")
            session.execute(query)
            assert session.compare_strategies(query, DrillOut(query.dimension_names[0]))["equal"]

    def test_drill_in_on_detail_chain(self, small_generic_dataset):
        config = small_generic_dataset.config
        session = OLAPSession(small_generic_dataset.instance, small_generic_dataset.schema)
        query = generic_query(config, aggregate="sum", include_detail_in_classifier=True, name="Qdetail")
        session.execute(query)
        for dimension in ("da", "db"):
            assert session.compare_strategies(query, DrillIn(dimension))["equal"]

    def test_instance_survives_serialization_roundtrip(self, small_generic_dataset):
        """Persisting and reloading the AnS instance does not change any answers."""
        text = serialize_ntriples(small_generic_dataset.instance)
        reloaded = parse_ntriples(text)
        original_evaluator = AnalyticalQueryEvaluator(small_generic_dataset.instance)
        reloaded_evaluator = AnalyticalQueryEvaluator(reloaded)
        query = small_generic_dataset.query
        original = Cube(original_evaluator.answer(query), query)
        recovered = Cube(reloaded_evaluator.answer(query), query)
        assert original.same_cells(recovered)
