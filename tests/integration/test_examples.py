"""Smoke tests keeping the example scripts runnable.

Each example is executed in a subprocess with small data sizes; the test
checks the exit status and a few landmark strings of the expected output.
"""

import os
import subprocess
import sys

import pytest

_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
EXAMPLES_DIR = os.path.join(_ROOT, "examples")
SRC_DIR = os.path.join(_ROOT, "src")


def run_example(script: str, *arguments: str) -> str:
    # Make the src layout importable in the child regardless of how the
    # parent test run found it (installed package, pythonpath ini, ...).
    environment = dict(os.environ)
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *arguments],
        capture_output=True,
        text=True,
        timeout=300,
        env=environment,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Posts per (age, city)" in output
        assert "SLICE age=35" in output
        assert "DRILL-OUT age" in output
        assert "rewrite[" in output

    def test_blogger_analytics(self):
        output = run_example("blogger_analytics.py", "--bloggers", "80")
        assert "Example 1 cube" in output
        assert "Example 4 cube" in output
        assert "rewriting vs. from-scratch" in output
        assert "False" not in output.split("OLAP operations")[1].split("Chained")[0]

    def test_video_portal_drill(self):
        output = run_example("video_portal_drill.py", "--videos", "60")
        assert "Auxiliary DRILL-IN query" in output
        assert "equal=True" in output
        assert "Views per browser" in output

    def test_olap_dashboard_session(self):
        output = run_example("olap_dashboard_session.py", "--facts", "200")
        assert "Materialized base cubes" in output
        assert "Session history" in output
        assert "answered by rewriting" in output
