"""End-to-end: OLAP sessions over on-disk snapshots, heap and mmap alike."""

import pytest

pytest.importorskip("numpy")

from repro.datagen.blogger import BloggerConfig, blogger_dataset, sites_per_blogger_query
from repro.errors import ConfigurationError
from repro.olap.operations import DrillOut, Slice
from repro.olap.session import OLAPSession
from repro.persistence import load_graph_snapshot, save_graph_snapshot
from repro.storage.mapped import SnapshotGraph


@pytest.fixture(scope="module")
def dataset():
    return blogger_dataset(BloggerConfig(bloggers=60, seed=13))


@pytest.fixture(scope="module")
def snapshot_path(dataset, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("session-snapshots") / "blogger.snap")
    save_graph_snapshot(dataset.instance, path)
    return path


def test_session_requires_exactly_one_source(dataset, snapshot_path):
    with pytest.raises(ValueError, match="exactly one"):
        OLAPSession()
    with pytest.raises(ValueError, match="exactly one"):
        OLAPSession(dataset.instance, snapshot=snapshot_path)


@pytest.mark.parametrize("mmap", [False, True])
def test_snapshot_session_matches_heap_session(dataset, snapshot_path, mmap):
    query = sites_per_blogger_query(dataset.schema)
    heap_session = OLAPSession(dataset.instance, dataset.schema)
    snapshot_session = OLAPSession(
        snapshot=snapshot_path, schema=dataset.schema, snapshot_mmap=mmap
    )
    assert isinstance(snapshot_session.instance, SnapshotGraph) == mmap

    oracle = heap_session.execute(query)
    cube = snapshot_session.execute(query)
    assert cube.same_cells(oracle)

    for operation in (DrillOut("dage"), Slice("dcity", next(iter(oracle.dimension_values("dcity"))))):
        transformed = snapshot_session.transform(query, operation)
        expected = heap_session.transform(query, operation)
        assert transformed.same_cells(expected)


def test_mmap_session_parallel_workers_attach_by_path(dataset, snapshot_path):
    query = sites_per_blogger_query(dataset.schema)
    oracle = OLAPSession(dataset.instance, dataset.schema).execute(query)
    with OLAPSession(
        snapshot=snapshot_path,
        schema=dataset.schema,
        workers=2,
        shard_count=3,
        parallel_backend="process",
    ) as session:
        assert session.parallel.attach_mode == "snapshot-mmap"
        materialized = session.parallel.evaluate(query)
        from repro.olap.cube import Cube

        assert Cube(materialized.answer, query).same_cells(oracle)
        assert session.parallel.last_backend == "process"
        assert session.parallel.stats.fallbacks == []


def test_persistence_wrappers_roundtrip(dataset, tmp_path):
    path = str(tmp_path / "wrapped.snap")
    save_graph_snapshot(dataset.instance, path)
    assert load_graph_snapshot(path, mmap=False) == dataset.instance
    assert load_graph_snapshot(path, mmap=True) == dataset.instance


def test_no_numpy_degrades_with_clear_error(monkeypatch, tmp_path, dataset):
    """Without the [fast] extra, snapshots fail fast naming the extra."""
    import repro.storage.snapshot as snapshot_module

    monkeypatch.setattr(snapshot_module, "_np", None)
    with pytest.raises(ConfigurationError, match=r"\[fast\]"):
        snapshot_module.save_snapshot(dataset.instance, str(tmp_path / "x.snap"))
    with pytest.raises(ConfigurationError, match=r"\[fast\]"):
        snapshot_module.load_snapshot(str(tmp_path / "x.snap"))
