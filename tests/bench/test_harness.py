"""Unit tests for the timing harness and result tables."""

import pytest

from repro.bench.harness import Measurement, ResultTable, compare_callables, time_callable
from repro.bench.reporting import report_to_markdown, table_to_markdown, write_report


class TestTiming:
    def test_time_callable_runs_warmup_and_repeats(self):
        calls = []
        measurement = time_callable("case", lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(measurement.seconds) == 3
        assert measurement.best <= measurement.mean
        assert measurement.milliseconds() >= 0

    def test_time_callable_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_callable("case", lambda: None, repeats=0)

    def test_metadata_is_kept(self):
        measurement = time_callable("case", lambda: None, repeats=1, metadata={"size": 10})
        assert measurement.metadata == {"size": 10}

    def test_compare_callables(self):
        measurements = compare_callables(
            [("a", lambda: None), ("b", lambda: None, {"note": 1})], repeats=1, warmup=0
        )
        assert [m.label for m in measurements] == ["a", "b"]
        assert measurements[1].metadata == {"note": 1}

    def test_empty_measurement_statistics_are_nan(self):
        measurement = Measurement("empty")
        assert measurement.mean != measurement.mean  # NaN


class TestResultTable:
    def test_add_row_and_render(self):
        table = ResultTable(["operation", "time (ms)"], title="demo")
        table.add_row("SLICE", 1.234)
        table.add_row("DICE", 250.0)
        text = table.to_text()
        assert "demo" in text and "SLICE" in text
        assert "1.234" in text and "250.0" in text

    def test_row_arity_checked(self):
        table = ResultTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_markdown_rendering(self):
        table = ResultTable(["a", "b"], title="t")
        table.add_row(1, 2)
        markdown = table_to_markdown(table)
        assert "| a | b |" in markdown
        assert "| 1 | 2 |" in markdown
        assert markdown.startswith("### t")

    def test_report_rendering_and_writing(self, tmp_path):
        table = ResultTable(["a"], title="t")
        table.add_row(1)
        report = report_to_markdown([table], heading="Results")
        assert report.startswith("# Results")
        path = tmp_path / "report.md"
        write_report([table], str(path), heading="Results")
        assert path.read_text().startswith("# Results")
