"""Machine-readable BENCH_*.json run records."""

import json
import os

import pytest

from repro.bench.reporting import (
    DEFAULT_RECORDS_DIR,
    RECORDS_DIR_ENV_VAR,
    bench_records_dir,
    write_bench_record,
)


class TestBenchRecords:
    def test_record_is_written_and_parseable(self, tmp_path):
        path = write_bench_record(
            "coldstart",
            "tiny",
            {"parse_s": 0.5, "mmap_s": 0.01},
            {"facts": 200, "speedup": 50.0},
            directory=str(tmp_path),
        )
        assert os.path.basename(path) == "BENCH_coldstart_tiny.json"
        record = json.loads(open(path, encoding="utf-8").read())
        assert record["name"] == "coldstart"
        assert record["scale"] == "tiny"
        assert record["measurements"] == {"parse_s": 0.5, "mmap_s": 0.01}
        assert record["metadata"]["speedup"] == 50.0

    def test_same_name_and_scale_overwrites(self, tmp_path):
        first = write_bench_record("x", "tiny", {"a": 1.0}, directory=str(tmp_path))
        second = write_bench_record("x", "tiny", {"a": 2.0}, directory=str(tmp_path))
        assert first == second
        assert json.loads(open(first, encoding="utf-8").read())["measurements"]["a"] == 2.0
        assert len(os.listdir(tmp_path)) == 1

    def test_names_are_slugged(self, tmp_path):
        path = write_bench_record(
            "snapshot cold-start!", "tiny", {}, directory=str(tmp_path)
        )
        assert os.path.basename(path) == "BENCH_snapshot_cold_start_tiny.json"

    def test_records_dir_honours_environment(self, tmp_path, monkeypatch):
        target = tmp_path / "custom-records"
        monkeypatch.setenv(RECORDS_DIR_ENV_VAR, str(target))
        assert bench_records_dir() == str(target)
        assert target.is_dir()
        monkeypatch.delenv(RECORDS_DIR_ENV_VAR)
        monkeypatch.chdir(tmp_path)
        assert bench_records_dir() == DEFAULT_RECORDS_DIR
        assert (tmp_path / DEFAULT_RECORDS_DIR).is_dir()

    def test_non_float_measurement_rejected(self, tmp_path):
        with pytest.raises((TypeError, ValueError)):
            write_bench_record("bad", "tiny", {"a": "fast"}, directory=str(tmp_path))
