"""Smoke tests for the experiment workloads (run at the 'tiny' scale).

These check that every experiment produces a well-formed table whose
correctness column ("equal") is True throughout — i.e. that the rewriting
answers agree with the from-scratch baseline on every configuration the
experiments exercise.  Timing columns are not asserted on (that is what the
benchmarks are for), only their presence.
"""

import pytest

from repro.bench.harness import ResultTable
from repro.bench.workloads import (
    SCALES,
    experiment_aggregates,
    experiment_dice_selectivity,
    experiment_dimensionality,
    experiment_engine_idspace,
    experiment_multivalue_fanout,
    experiment_operations_table,
    experiment_pres_storage,
    experiment_scaling,
)


def _column(table: ResultTable, name: str):
    index = table.columns.index(name)
    return [row[index] for row in table.rows]


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) >= {"tiny", "small", "paper"}

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            experiment_scaling("slice", scale="huge")


class TestExperiments:
    def test_operations_table(self):
        table = experiment_operations_table("tiny")
        assert set(_column(table, "operation")) >= {"SLICE", "DICE", "DRILL-OUT", "DRILL-IN"}
        assert all(value == "True" for value in _column(table, "equal"))

    def test_engine_idspace_comparison(self):
        table = experiment_engine_idspace("tiny", repeats=1)
        assert set(_column(table, "engine")) == {"legacy", "decoded", "id-space"}
        # every engine's cube equals the legacy (seed) cube on every workload
        assert all(value == "True" for value in _column(table, "equal"))

    @pytest.mark.parametrize("kind", ["slice", "dice", "drill-out", "drill-in"])
    def test_scaling_experiments(self, kind):
        table = experiment_scaling(kind, scale="tiny")
        assert len(table.rows) == len(SCALES["tiny"]["sweep"])
        assert all(value == "True" for value in _column(table, "equal"))

    def test_scaling_rejects_unknown_operation(self):
        with pytest.raises(ValueError):
            experiment_scaling("rollup", scale="tiny")

    def test_dice_selectivity(self):
        table = experiment_dice_selectivity("tiny")
        assert len(table.rows) == 6
        assert all(value == "True" for value in _column(table, "equal"))

    def test_multivalue_fanout_shows_naive_error(self):
        table = experiment_multivalue_fanout("tiny")
        assert all(value == "True" for value in _column(table, "equal"))
        wrong = [int(value) for value in _column(table, "naive wrong cells")]
        # With fan-out 1.0 the naive re-aggregation is correct; with the
        # largest fan-out it must be wrong somewhere.
        assert wrong[0] == 0
        assert wrong[-1] > 0

    def test_dimensionality(self):
        table = experiment_dimensionality("tiny")
        assert all(value == "True" for value in _column(table, "equal"))
        assert set(_column(table, "operation")) == {"DRILL-OUT", "DRILL-IN"}

    def test_pres_storage_reports_sizes(self):
        table = experiment_pres_storage("tiny")
        assert len(table.rows) == len(SCALES["tiny"]["sweep"])
        pres_rows = [int(value) for value in _column(table, "pres rows")]
        instance_sizes = [int(value) for value in _column(table, "instance triples")]
        assert all(pres <= size for pres, size in zip(pres_rows, instance_sizes))

    def test_aggregates(self):
        table = experiment_aggregates("tiny")
        assert set(_column(table, "aggregate")) == {"count", "sum", "avg", "min", "max"}
        assert all(value == "True" for value in _column(table, "equal"))
