"""Snapshot round-trips, error paths, and the mapped graph's read API."""

import pickle
import struct

import pytest

np = pytest.importorskip("numpy")

from repro.datagen.blogger import BloggerConfig, blogger_dataset
from repro.datagen.videos import VideoConfig, video_dataset
from repro.errors import (
    DictionaryError,
    ReadOnlyGraphError,
    SnapshotFormatError,
    SnapshotVersionError,
    StorageError,
)
from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import Triple
from repro.storage import (
    SNAPSHOT_FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    SnapshotGraph,
    load_snapshot,
    open_snapshot,
    save_snapshot,
)
from repro.storage.snapshot import _FIXED_HEADER


@pytest.fixture(scope="module")
def blogger_instance():
    return blogger_dataset(BloggerConfig(bloggers=40, seed=5)).instance


@pytest.fixture(scope="module")
def video_instance():
    return video_dataset(VideoConfig(videos=40, seed=5)).instance


def _snapshot_of(graph, tmp_path, name="instance.snap"):
    path = str(tmp_path / name)
    save_snapshot(graph, path)
    return path


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fixture", ["blogger_instance", "video_instance"])
@pytest.mark.parametrize("mmap", [False, True])
def test_roundtrip_equality(request, tmp_path, fixture, mmap):
    graph = request.getfixturevalue(fixture)
    loaded = load_snapshot(_snapshot_of(graph, tmp_path), mmap=mmap)
    assert len(loaded) == len(graph)
    assert loaded == graph
    assert graph == loaded
    assert loaded.version == graph.version
    assert loaded.name == graph.name


def test_roundtrip_preserves_term_ids(blogger_instance, tmp_path):
    mapped = load_snapshot(_snapshot_of(blogger_instance, tmp_path))
    heap = load_snapshot(_snapshot_of(blogger_instance, tmp_path), mmap=False)
    for term, term_id in list(blogger_instance.dictionary.items())[:50]:
        assert mapped.encode_term(term) == term_id
        assert heap.encode_term(term) == term_id
        assert mapped.decode_id(term_id) == term


def test_roundtrip_indexes_match(blogger_instance, tmp_path):
    mapped = load_snapshot(_snapshot_of(blogger_instance, tmp_path))
    assert sorted(mapped.encoded_triples()) == sorted(blogger_instance.encoded_triples())
    for _, p_id, _ in list(blogger_instance.encoded_triples())[:20]:
        assert mapped.count_ids(None, p_id, None) == blogger_instance.count_ids(
            None, p_id, None
        )
        subjects, objects = mapped.columnar_predicate_pairs(p_id)
        assert len(subjects) == blogger_instance.count_ids(None, p_id, None)
        keys, _ = mapped.columnar_sorted_pairs(p_id, 0)
        assert list(keys) == sorted(keys.tolist())
        keys, _ = mapped.columnar_sorted_pairs(p_id, 2)
        assert list(keys) == sorted(keys.tolist())


def test_mapped_id_apis_return_python_ints(blogger_instance, tmp_path):
    """np.int64 leaking out of id APIs would break isinstance(x, int) checks."""
    mapped = load_snapshot(_snapshot_of(blogger_instance, tmp_path))
    s, p, o = next(iter(mapped.encoded_triples()))
    assert all(type(value) is int for value in (s, p, o))
    for value in mapped.match_single_ids(s, p, None, 2):
        assert type(value) is int
    for triple in mapped.match_ids(None, p, None):
        assert all(type(value) is int for value in triple)
        break


def test_mapped_graph_is_read_only(blogger_instance, tmp_path):
    mapped = load_snapshot(_snapshot_of(blogger_instance, tmp_path))
    triple = Triple(IRI("http://example.org/x"), IRI("http://example.org/p"), Literal(1))
    with pytest.raises(ReadOnlyGraphError):
        mapped.add(triple)
    with pytest.raises(ReadOnlyGraphError):
        mapped.remove(triple)
    with pytest.raises(ReadOnlyGraphError):
        mapped.clear()
    assert isinstance(ReadOnlyGraphError("x"), StorageError)


def test_mapped_dictionary_is_read_only(blogger_instance, tmp_path):
    mapped = load_snapshot(_snapshot_of(blogger_instance, tmp_path))
    unseen = IRI("http://example.org/definitely-not-in-the-instance")
    assert mapped.encode_term(unseen) is None
    with pytest.raises(DictionaryError):
        mapped.dictionary.encode(unseen)


def test_mapped_graph_pickles_as_path(blogger_instance, tmp_path):
    mapped = load_snapshot(_snapshot_of(blogger_instance, tmp_path))
    payload = pickle.dumps(mapped)
    assert len(payload) < 1024  # a path, not a graph
    clone = pickle.loads(payload)
    assert isinstance(clone, SnapshotGraph)
    assert clone == mapped


def test_mapped_deltas_degrade_to_full_invalidation(blogger_instance, tmp_path):
    mapped = load_snapshot(_snapshot_of(blogger_instance, tmp_path))
    assert mapped.deltas_since(mapped.version).is_empty()
    if mapped.version > 0:
        assert mapped.deltas_since(mapped.version - 1) is None


def test_mapped_statistics_match_scan(blogger_instance, tmp_path):
    mapped = load_snapshot(_snapshot_of(blogger_instance, tmp_path))
    from_summary = GraphStatistics(mapped)
    from_scan = GraphStatistics(blogger_instance)
    assert from_summary.triple_count == from_scan.triple_count
    assert from_summary.predicate_counts == from_scan.predicate_counts
    assert (
        from_summary.predicate_distinct_subjects
        == from_scan.predicate_distinct_subjects
    )
    assert (
        from_summary.predicate_distinct_objects == from_scan.predicate_distinct_objects
    )
    assert from_summary.class_counts == from_scan.class_counts


def test_heap_load_is_mutable(blogger_instance, tmp_path):
    heap = load_snapshot(_snapshot_of(blogger_instance, tmp_path), mmap=False)
    triple = Triple(IRI("http://example.org/new"), IRI("http://example.org/p"), Literal(7))
    assert heap.add(triple)
    assert triple in heap
    assert len(heap) == len(blogger_instance) + 1


def test_empty_graph_roundtrip(tmp_path):
    from repro.rdf.graph import Graph

    path = str(tmp_path / "empty.snap")
    save_snapshot(Graph(name="empty"), path)
    for mmap in (False, True):
        loaded = load_snapshot(path, mmap=mmap)
        assert len(loaded) == 0
        assert not loaded


# ---------------------------------------------------------------------------
# error paths
# ---------------------------------------------------------------------------


def test_bad_magic_raises_format_error(tmp_path):
    path = str(tmp_path / "bad.snap")
    with open(path, "wb") as handle:
        handle.write(b"NOTASNAP" + b"\0" * 64)
    with pytest.raises(SnapshotFormatError, match="bad magic"):
        open_snapshot(path)


def test_truncated_fixed_header_raises(tmp_path):
    path = str(tmp_path / "short.snap")
    with open(path, "wb") as handle:
        handle.write(SNAPSHOT_MAGIC[:4])
    with pytest.raises(SnapshotFormatError, match="truncated"):
        open_snapshot(path)


def test_truncated_payload_raises(blogger_instance, tmp_path):
    path = _snapshot_of(blogger_instance, tmp_path)
    data = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    with pytest.raises(SnapshotFormatError, match="truncated"):
        open_snapshot(path)


def test_version_mismatch_raises_version_error(blogger_instance, tmp_path):
    path = _snapshot_of(blogger_instance, tmp_path)
    data = bytearray(open(path, "rb").read())
    struct.pack_into("<I", data, len(SNAPSHOT_MAGIC), SNAPSHOT_FORMAT_VERSION + 1)
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    with pytest.raises(SnapshotVersionError, match="format version"):
        open_snapshot(path)


def test_corrupt_header_json_raises(blogger_instance, tmp_path):
    path = _snapshot_of(blogger_instance, tmp_path)
    data = bytearray(open(path, "rb").read())
    # Overwrite the first JSON header byte with garbage.
    data[_FIXED_HEADER.size] = 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    with pytest.raises(SnapshotFormatError, match="corrupt header"):
        open_snapshot(path)


def test_missing_file_raises_format_error(tmp_path):
    with pytest.raises(SnapshotFormatError, match="cannot read"):
        open_snapshot(str(tmp_path / "does-not-exist.snap"))
