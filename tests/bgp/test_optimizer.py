"""Unit tests for the greedy join-order optimizer."""

import pytest

from repro.rdf import EX, Graph, Literal, RDF, Triple
from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.optimizer import estimate_pattern_cost, order_patterns

RDF_TYPE = RDF.term("type")


@pytest.fixture()
def skewed_graph() -> Graph:
    """Many bloggers, very few sites: the optimizer should start from Site."""
    graph = Graph()
    for index in range(50):
        user = EX.term(f"user{index}")
        graph.add(Triple(user, RDF_TYPE, EX.Blogger))
        graph.add(Triple(user, EX.hasAge, Literal(20 + index % 10)))
    for index in range(2):
        graph.add(Triple(EX.term(f"site{index}"), RDF_TYPE, EX.Site))
    return graph


class TestEstimates:
    def test_with_statistics_uses_counts(self, skewed_graph):
        statistics = GraphStatistics(skewed_graph)
        blogger = TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)
        site = TriplePattern(Variable("s"), RDF_TYPE, EX.Site)
        assert estimate_pattern_cost(site, statistics) < estimate_pattern_cost(blogger, statistics)

    def test_without_statistics_prefers_more_constants(self):
        open_pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        typed = TriplePattern(Variable("s"), RDF_TYPE, EX.Blogger)
        grounded = TriplePattern(EX.user1, RDF_TYPE, EX.Blogger)
        assert estimate_pattern_cost(grounded, None) < estimate_pattern_cost(typed, None)
        assert estimate_pattern_cost(typed, None) < estimate_pattern_cost(open_pattern, None)


class TestOrdering:
    def test_trivial_cases(self):
        assert order_patterns([]) == []
        single = [TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)]
        assert order_patterns(single) == single

    def test_most_selective_pattern_first(self, skewed_graph):
        statistics = GraphStatistics(skewed_graph)
        blogger = TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)
        age = TriplePattern(Variable("x"), EX.hasAge, Variable("a"))
        site = TriplePattern(Variable("s"), RDF_TYPE, EX.Site)
        ordered = order_patterns([blogger, age, site], statistics)
        assert ordered[0] == site

    def test_connected_patterns_preferred_over_cheaper_disconnected(self, skewed_graph):
        statistics = GraphStatistics(skewed_graph)
        blogger = TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)
        age = TriplePattern(Variable("x"), EX.hasAge, Variable("a"))
        site = TriplePattern(Variable("s"), RDF_TYPE, EX.Site)
        ordered = order_patterns([blogger, age, site], statistics)
        # After the first (site) pattern, the remaining two are connected to
        # each other; they must be adjacent rather than interleaved with a
        # disconnected pattern (there is none left, so check the pair order
        # is by selectivity).
        assert set(ordered[1:]) == {blogger, age}

    def test_connected_chain_follows_shared_variables(self, skewed_graph):
        statistics = GraphStatistics(skewed_graph)
        x, p, s = Variable("x"), Variable("p"), Variable("s")
        chain = [
            TriplePattern(x, RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.wrotePost, p),
            TriplePattern(p, EX.postedOn, s),
        ]
        ordered = order_patterns(chain, statistics)
        seen = set(ordered[0].variables())
        for pattern in ordered[1:]:
            # every subsequent pattern shares at least one variable with the prefix
            # (no Cartesian products) unless it is genuinely disconnected.
            assert pattern.variables() & seen
            seen |= pattern.variables()

    def test_bound_variables_count_as_connected(self, skewed_graph):
        statistics = GraphStatistics(skewed_graph)
        x = Variable("x")
        patterns = [
            TriplePattern(x, RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.hasAge, Variable("a")),
        ]
        ordered = order_patterns(patterns, statistics, bound_variables={x})
        assert len(ordered) == 2

    def test_result_is_a_permutation(self, skewed_graph):
        statistics = GraphStatistics(skewed_graph)
        patterns = [
            TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger),
            TriplePattern(Variable("x"), EX.hasAge, Variable("a")),
            TriplePattern(Variable("s"), RDF_TYPE, EX.Site),
        ]
        ordered = order_patterns(patterns, statistics)
        assert sorted(map(hash, ordered)) == sorted(map(hash, patterns))
