"""Unit tests for the BGPQuery model (heads, bodies, rootedness, m̄)."""

import pytest

from repro.errors import QueryDefinitionError, QueryNotRootedError
from repro.rdf import EX, Literal, RDF
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.query import BGPQuery

RDF_TYPE = RDF.term("type")


def paper_rooted_query() -> BGPQuery:
    """The rooted BGP example of Section 2 (root x1)."""
    x1, x2, x3 = Variable("x1"), Variable("x2"), Variable("x3")
    y1, y2 = Variable("y1"), Variable("y2")
    return BGPQuery(
        [x1, x2, x3],
        [
            TriplePattern(x1, EX.acquaintedWith, x2),
            TriplePattern(x1, EX.identifiedBy, y1),
            TriplePattern(x1, EX.wrotePost, y2),
            TriplePattern(y2, EX.postedOn, x3),
        ],
        name="q",
    )


class TestConstruction:
    def test_head_and_body_accessors(self):
        query = paper_rooted_query()
        assert query.head_names == ("x1", "x2", "x3")
        assert len(query.body) == 4
        assert query.arity() == 3

    def test_strings_accepted_in_head(self):
        query = BGPQuery(["x"], [TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)])
        assert query.head == (Variable("x"),)

    def test_empty_head_rejected(self):
        with pytest.raises(QueryDefinitionError):
            BGPQuery([], [TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)])

    def test_duplicate_head_variables_rejected(self):
        with pytest.raises(QueryDefinitionError):
            BGPQuery(["x", "x"], [TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)])

    def test_empty_body_rejected(self):
        with pytest.raises(QueryDefinitionError):
            BGPQuery(["x"], [])

    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(QueryDefinitionError):
            BGPQuery(["x", "missing"], [TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)])

    def test_non_pattern_body_rejected(self):
        with pytest.raises(QueryDefinitionError):
            BGPQuery(["x"], ["not a pattern"])  # type: ignore[list-item]


class TestVariables:
    def test_variables_and_existentials(self):
        query = paper_rooted_query()
        assert query.variables() == {Variable(name) for name in ("x1", "x2", "x3", "y1", "y2")}
        assert query.existential_variables() == {Variable("y1"), Variable("y2")}

    def test_patterns_with_variable(self):
        query = paper_rooted_query()
        assert len(query.patterns_with_variable("y2")) == 2
        assert len(query.patterns_with_variable("x2")) == 1
        assert query.patterns_with_variable("unused") == []

    def test_predicates(self):
        query = paper_rooted_query()
        assert EX.wrotePost in query.predicates()


class TestRootedness:
    def test_paper_example_is_rooted_in_x1(self):
        query = paper_rooted_query()
        assert query.is_rooted_in("x1")
        assert query.root() == Variable("x1")
        assert query.require_rooted() is query

    def test_not_rooted_in_leaf_variable(self):
        query = paper_rooted_query()
        # From x2 one can only reach x1's component through x1, which the
        # undirected reachability allows; a genuinely disconnected query is
        # needed to break rootedness.
        disconnected = BGPQuery(
            ["x", "z"],
            [
                TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger),
                TriplePattern(Variable("z"), RDF_TYPE, EX.Site),
            ],
        )
        assert not disconnected.is_rooted_in("x")
        with pytest.raises(QueryNotRootedError):
            disconnected.root()

    def test_unknown_root_variable(self):
        query = paper_rooted_query()
        assert not query.is_rooted_in("nope")

    def test_single_pattern_query_is_rooted(self):
        query = BGPQuery(["x"], [TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)])
        assert query.is_rooted_in("x")


class TestTransformations:
    def test_with_head(self):
        query = paper_rooted_query()
        narrowed = query.with_head(["x1", "x3"])
        assert narrowed.head_names == ("x1", "x3")
        assert narrowed.body == query.body

    def test_with_body(self):
        query = paper_rooted_query()
        extended = query.with_body(list(query.body) + [TriplePattern(Variable("x1"), RDF_TYPE, EX.Blogger)])
        assert len(extended.body) == 5
        assert extended.head == query.head

    def test_all_variables_head_orders_head_first(self):
        query = paper_rooted_query()
        bar = query.all_variables_head()
        assert bar.head_names[:3] == ("x1", "x2", "x3")
        assert set(bar.head_names[3:]) == {"y1", "y2"}

    def test_substitute_grounds_and_drops_from_head(self):
        query = paper_rooted_query()
        grounded = query.substitute({Variable("x2"): EX.user2})
        assert grounded.head_names == ("x1", "x3")
        assert TriplePattern(Variable("x1"), EX.acquaintedWith, EX.user2) in grounded.body

    def test_substitute_cannot_remove_entire_head(self):
        query = BGPQuery(["x"], [TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger)])
        with pytest.raises(QueryDefinitionError):
            query.substitute({Variable("x"): EX.user1})

    def test_rename_variables(self):
        query = paper_rooted_query()
        renamed = query.rename_variables({Variable("x1"): Variable("fact")})
        assert renamed.head_names[0] == "fact"
        assert Variable("x1") not in renamed.variables()


class TestEqualityAndDisplay:
    def test_equality_ignores_body_order(self):
        x = Variable("x")
        patterns = [
            TriplePattern(x, RDF_TYPE, EX.Blogger),
            TriplePattern(x, EX.hasAge, Variable("dage")),
        ]
        a = BGPQuery(["x", "dage"], patterns)
        b = BGPQuery(["x", "dage"], list(reversed(patterns)))
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_requires_same_head_order(self):
        x = Variable("x")
        patterns = [TriplePattern(x, EX.hasAge, Variable("dage"))]
        assert BGPQuery(["x", "dage"], patterns) != BGPQuery(["dage", "x"], patterns)

    def test_to_text_is_paper_like(self):
        query = paper_rooted_query()
        text = query.to_text()
        assert text.startswith("q(?x1, ?x2, ?x3) :- ")
        assert "acquaintedWith" in text
