"""Unit tests for the textual BGP query syntax."""

import pytest

from repro.errors import QueryParseError
from repro.rdf import EX, IRI, Literal, RDF, XSD
from repro.rdf.namespaces import Namespace, PrefixMap
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.parser import default_prefixes, parse_query, parse_triple_patterns

RDF_TYPE = RDF.term("type")


class TestParseQuery:
    def test_example1_classifier(self):
        query = parse_query(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type ex:Blogger, ?x ex:hasAge ?dage, ?x ex:livesIn ?dcity"
        )
        assert query.name == "c"
        assert query.head_names == ("x", "dage", "dcity")
        assert TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger) in query.body
        assert TriplePattern(Variable("x"), EX.hasAge, Variable("dage")) in query.body

    def test_bare_identifiers_resolve_to_default_namespace(self):
        query = parse_query("m(?x, ?v) :- ?x wrotePost ?p, ?p postedOn ?v")
        assert TriplePattern(Variable("x"), EX.wrotePost, Variable("p")) in query.body

    def test_a_keyword(self):
        query = parse_query("q(?x) :- ?x a Blogger")
        assert TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger) in query.body

    def test_full_iris(self):
        query = parse_query("q(?x) :- ?x <http://example.org/hasAge> ?a")
        assert TriplePattern(Variable("x"), EX.hasAge, Variable("a")) in query.body

    def test_literals(self):
        query = parse_query(
            'q(?x) :- ?x hasAge 28, ?x identifiedBy "Bill", ?x score 2.5, ?x active true'
        )
        objects = {pattern.predicate.local_name(): pattern.object for pattern in query.body}
        assert objects["hasAge"] == Literal(28)
        assert objects["identifiedBy"] == Literal("Bill")
        assert float(objects["score"].to_python()) == pytest.approx(2.5)
        assert objects["active"].to_python() is True

    def test_typed_and_tagged_string_literals(self):
        query = parse_query('q(?x) :- ?x name "Bill"@en, ?x age "28"^^xsd:integer')
        objects = {pattern.predicate.local_name(): pattern.object for pattern in query.body}
        assert objects["name"] == Literal("Bill", language="en")
        assert objects["age"] == Literal(28)

    def test_custom_default_namespace(self):
        other = Namespace("http://other.example/")
        query = parse_query("q(?x) :- ?x likes ?y", default_namespace=other)
        assert TriplePattern(Variable("x"), other.likes, Variable("y")) in query.body

    def test_custom_prefix_map(self):
        prefixes = default_prefixes()
        prefixes.bind("foaf", "http://xmlns.com/foaf/0.1/")
        query = parse_query("q(?x) :- ?x foaf:knows ?y", prefixes=prefixes)
        assert TriplePattern(Variable("x"), IRI("http://xmlns.com/foaf/0.1/knows"), Variable("y")) in query.body

    def test_optional_trailing_dot_and_comments(self):
        query = parse_query("q(?x) :- ?x a Blogger . # done")
        assert len(query.body) == 1

    def test_multiline_input(self):
        query = parse_query(
            """
            c(?x, ?dage) :-
                ?x a Blogger,
                ?x hasAge ?dage
            """
        )
        assert query.head_names == ("x", "dage")


class TestParseErrors:
    def test_missing_separator(self):
        with pytest.raises(QueryParseError):
            parse_query("q(?x) ?x a Blogger")

    def test_malformed_head(self):
        with pytest.raises(QueryParseError):
            parse_query("q ?x :- ?x a Blogger")

    def test_head_variable_without_question_mark(self):
        with pytest.raises(QueryParseError):
            parse_query("q(x) :- ?x a Blogger")

    def test_empty_head(self):
        with pytest.raises(QueryParseError):
            parse_query("q() :- ?x a Blogger")

    def test_wrong_term_count(self):
        with pytest.raises(QueryParseError):
            parse_query("q(?x) :- ?x hasAge")
        with pytest.raises(QueryParseError):
            parse_query("q(?x) :- ?x hasAge 28 extra")

    def test_empty_body(self):
        with pytest.raises(QueryParseError):
            parse_query("q(?x) :- ")

    def test_unknown_prefix(self):
        with pytest.raises(QueryParseError):
            parse_query("q(?x) :- ?x nope:p ?y")

    def test_unexpected_character(self):
        with pytest.raises(QueryParseError):
            parse_query("q(?x) :- ?x { ?y")


class TestParseTriplePatterns:
    def test_standalone_body_parsing(self):
        patterns = parse_triple_patterns("?x a Blogger, ?x hasAge ?dage")
        assert len(patterns) == 2

    def test_default_prefixes_bind_ex(self):
        prefixes = default_prefixes()
        assert prefixes.expand("ex:Blogger") == EX.Blogger
        assert prefixes.expand("rdf:type") == RDF_TYPE
