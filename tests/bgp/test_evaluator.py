"""Unit tests for BGP query evaluation (set and bag semantics)."""

import pytest

from repro.errors import EvaluationError
from repro.rdf import EX, Graph, Literal, RDF, Triple
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.evaluator import BGPEvaluator, evaluate_query
from repro.bgp.parser import parse_query
from repro.bgp.query import BGPQuery

RDF_TYPE = RDF.term("type")


@pytest.fixture()
def example2_like_graph() -> Graph:
    """user1 posts twice on s1 and once on s2; user3 once on s2."""
    graph = Graph()
    for user in (EX.user1, EX.user3):
        graph.add(Triple(user, RDF_TYPE, EX.Blogger))
    graph.add(Triple(EX.user1, EX.hasAge, Literal(28)))
    graph.add(Triple(EX.user3, EX.hasAge, Literal(35)))
    posts = {"p1": (EX.user1, "s1"), "p2": (EX.user1, "s1"), "p3": (EX.user1, "s2"), "p4": (EX.user3, "s2")}
    for name, (author, site) in posts.items():
        post = EX.term(name)
        graph.add(Triple(author, EX.wrotePost, post))
        graph.add(Triple(post, EX.postedOn, EX.term(site)))
    return graph


class TestSetSemantics:
    def test_single_pattern(self, example2_like_graph):
        query = parse_query("q(?x) :- ?x rdf:type ex:Blogger")
        result = evaluate_query(query, example2_like_graph)
        assert result.columns == ("x",)
        assert set(result.column_values("x")) == {EX.user1, EX.user3}

    def test_join_on_shared_variable(self, example2_like_graph):
        query = parse_query("q(?x, ?s) :- ?x wrotePost ?p, ?p postedOn ?s")
        result = evaluate_query(query, example2_like_graph)
        # Set semantics collapses the two embeddings of (user1, s1).
        assert result.to_multiset() == {
            (EX.user1, EX.term("s1")): 1,
            (EX.user1, EX.term("s2")): 1,
            (EX.user3, EX.term("s2")): 1,
        }

    def test_projection_deduplicates(self, example2_like_graph):
        query = parse_query("q(?x) :- ?x wrotePost ?p, ?p postedOn ?s")
        result = evaluate_query(query, example2_like_graph)
        assert len(result) == 2

    def test_constant_in_pattern(self, example2_like_graph):
        query = parse_query("q(?x) :- ?x hasAge 28")
        result = evaluate_query(query, example2_like_graph)
        assert result.column_values("x") == [EX.user1]

    def test_unknown_constant_gives_empty_result(self, example2_like_graph):
        query = parse_query("q(?x) :- ?x hasAge 99")
        assert len(evaluate_query(query, example2_like_graph)) == 0
        query2 = parse_query("q(?x) :- ?x unknownProperty ?y")
        assert len(evaluate_query(query2, example2_like_graph)) == 0

    def test_empty_graph(self):
        query = parse_query("q(?x) :- ?x rdf:type ex:Blogger")
        assert len(evaluate_query(query, Graph())) == 0


class TestBagSemantics:
    def test_bag_counts_embeddings(self, example2_like_graph):
        query = parse_query("m(?x, ?s) :- ?x wrotePost ?p, ?p postedOn ?s")
        result = evaluate_query(query, example2_like_graph, semantics="bag")
        # user1 posts twice on s1 (two embeddings through p1 and p2).
        assert result.to_multiset() == {
            (EX.user1, EX.term("s1")): 2,
            (EX.user1, EX.term("s2")): 1,
            (EX.user3, EX.term("s2")): 1,
        }

    def test_set_is_dedup_of_bag(self, example2_like_graph):
        query = parse_query("m(?x, ?s) :- ?x wrotePost ?p, ?p postedOn ?s")
        bag = evaluate_query(query, example2_like_graph, semantics="bag")
        set_result = evaluate_query(query, example2_like_graph, semantics="set")
        assert set(bag.rows) == set(set_result.rows)
        assert len(bag) >= len(set_result)

    def test_invalid_semantics(self, example2_like_graph):
        query = parse_query("q(?x) :- ?x rdf:type ex:Blogger")
        evaluator = BGPEvaluator(example2_like_graph)
        with pytest.raises(EvaluationError):
            evaluator.evaluate(query, semantics="multiset")


class TestEvaluatorFeatures:
    def test_initial_binding_restricts_results(self, example2_like_graph):
        evaluator = BGPEvaluator(example2_like_graph)
        query = parse_query("q(?x, ?s) :- ?x wrotePost ?p, ?p postedOn ?s")
        result = evaluator.evaluate(query, initial_binding={Variable("x"): EX.user3})
        assert result.rows == [(EX.user3, EX.term("s2"))]

    def test_initial_binding_with_unknown_term(self, example2_like_graph):
        evaluator = BGPEvaluator(example2_like_graph)
        query = parse_query("q(?x) :- ?x rdf:type ex:Blogger")
        result = evaluator.evaluate(query, initial_binding={Variable("x"): EX.term("ghost")})
        assert len(result) == 0

    def test_count_matches_len(self, example2_like_graph):
        evaluator = BGPEvaluator(example2_like_graph)
        query = parse_query("q(?x, ?s) :- ?x wrotePost ?p, ?p postedOn ?s")
        assert evaluator.count(query) == len(evaluator.evaluate(query))
        assert evaluator.count(query, semantics="bag") == 4

    def test_repeated_variable_within_pattern(self):
        graph = Graph()
        graph.add(Triple(EX.a, EX.knows, EX.a))
        graph.add(Triple(EX.a, EX.knows, EX.b))
        query = BGPQuery(["x"], [TriplePattern(Variable("x"), EX.knows, Variable("x"))])
        result = evaluate_query(query, graph)
        assert result.rows == [(EX.a,)]

    def test_cyclic_join_shape(self):
        graph = Graph()
        graph.add(Triple(EX.a, EX.p, EX.b))
        graph.add(Triple(EX.b, EX.q, EX.a))
        graph.add(Triple(EX.b, EX.q, EX.c))
        x, y = Variable("x"), Variable("y")
        query = BGPQuery([x, y], [TriplePattern(x, EX.p, y), TriplePattern(y, EX.q, x)])
        result = evaluate_query(query, graph)
        assert result.rows == [(EX.a, EX.b)]

    def test_cross_product_of_disconnected_patterns(self, example2_like_graph):
        query = parse_query("q(?x, ?y) :- ?x rdf:type ex:Blogger, ?y postedOn ?s")
        result = evaluate_query(query, example2_like_graph)
        # 2 bloggers x 4 posts (p1..p4) = 8 distinct (x, y) combinations.
        assert len(result) == 8

    def test_literal_results_are_decoded(self, example2_like_graph):
        query = parse_query("q(?x, ?a) :- ?x hasAge ?a")
        ages = dict(evaluate_query(query, example2_like_graph).rows)
        assert ages[EX.user1] == Literal(28)

    def test_statistics_are_reused(self, example2_like_graph):
        evaluator = BGPEvaluator(example2_like_graph)
        assert evaluator.statistics.triple_count == len(example2_like_graph)
        assert evaluator.graph is example2_like_graph
