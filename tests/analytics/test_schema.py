"""Unit tests for analytical schemas and the homomorphism check."""

import pytest

from repro.errors import HomomorphismError, SchemaDefinitionError
from repro.rdf import EX, RDF
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.parser import parse_query
from repro.bgp.query import BGPQuery
from repro.analytics.schema import AnalyticalSchema
from repro.datagen.blogger import blogger_schema

RDF_TYPE = RDF.term("type")


class TestRegistration:
    def test_add_class_with_explicit_query(self):
        schema = AnalyticalSchema(namespace=EX)
        query = parse_query("def(?x) :- ?x rdf:type ex:Blogger")
        node = schema.add_class("Blogger", query)
        assert node.iri == EX.Blogger
        assert schema.has_class("Blogger")
        assert schema.analysis_class(EX.Blogger).label == "Blogger"

    def test_add_class_from_type_default(self):
        schema = AnalyticalSchema(namespace=EX)
        node = schema.add_class_from_type("Blogger")
        assert node.query.arity() == 1
        assert TriplePattern(Variable("x"), RDF_TYPE, EX.Blogger) in node.query.body

    def test_class_query_must_be_unary(self):
        schema = AnalyticalSchema(namespace=EX)
        binary = parse_query("def(?s, ?o) :- ?s ex:wrotePost ?o")
        with pytest.raises(SchemaDefinitionError):
            schema.add_class("Blogger", binary)

    def test_duplicate_class_rejected(self):
        schema = AnalyticalSchema(namespace=EX)
        schema.add_class_from_type("Blogger")
        with pytest.raises(SchemaDefinitionError):
            schema.add_class_from_type("Blogger")

    def test_add_property_requires_declared_endpoints(self):
        schema = AnalyticalSchema(namespace=EX)
        schema.add_class_from_type("Blogger")
        with pytest.raises(SchemaDefinitionError):
            schema.add_property_from_predicate("livesIn", "Blogger", "City")

    def test_property_query_must_be_binary(self):
        schema = AnalyticalSchema(namespace=EX)
        schema.add_class_from_type("Blogger")
        schema.add_class_from_type("City")
        unary = parse_query("def(?x) :- ?x rdf:type ex:Blogger")
        with pytest.raises(SchemaDefinitionError):
            schema.add_property("livesIn", "Blogger", "City", unary)

    def test_duplicate_property_rejected(self):
        schema = AnalyticalSchema(namespace=EX)
        schema.add_class_from_type("Blogger")
        schema.add_class_from_type("City")
        schema.add_property_from_predicate("livesIn", "Blogger", "City")
        with pytest.raises(SchemaDefinitionError):
            schema.add_property_from_predicate("livesIn", "Blogger", "City")

    def test_lookup_unknown_entities(self):
        schema = AnalyticalSchema(namespace=EX)
        with pytest.raises(SchemaDefinitionError):
            schema.analysis_class("Nothing")
        with pytest.raises(SchemaDefinitionError):
            schema.analysis_property("nothing")

    def test_iri_listings(self):
        schema = blogger_schema()
        assert EX.Blogger in schema.class_iris()
        assert EX.wrotePost in schema.property_iris()
        assert len(schema.classes) == len(schema.class_iris())
        assert len(schema.properties) == len(schema.property_iris())


class TestHomomorphism:
    def test_example1_classifier_and_measure_are_homomorphic(self):
        schema = blogger_schema()
        classifier = parse_query(
            "c(?x, ?dage, ?dcity) :- ?x rdf:type ex:Blogger, ?x ex:hasAge ?dage, ?x ex:livesIn ?dcity"
        )
        measure = parse_query(
            "m(?x, ?vsite) :- ?x rdf:type ex:Blogger, ?x ex:wrotePost ?p, ?p ex:postedOn ?vsite"
        )
        schema.check_homomorphic(classifier)
        schema.check_homomorphic(measure)
        assert schema.is_homomorphic(classifier)

    def test_unknown_property_rejected(self):
        schema = blogger_schema()
        query = parse_query("q(?x) :- ?x ex:worksAt ?y")
        assert not schema.is_homomorphic(query)
        with pytest.raises(HomomorphismError):
            schema.check_homomorphic(query)

    def test_unknown_class_rejected(self):
        schema = blogger_schema()
        query = parse_query("q(?x) :- ?x rdf:type ex:Journalist")
        with pytest.raises(HomomorphismError):
            schema.check_homomorphic(query)

    def test_variable_predicate_rejected(self):
        schema = blogger_schema()
        x, p, y = Variable("x"), Variable("p"), Variable("y")
        query = BGPQuery([x], [TriplePattern(x, p, y)])
        with pytest.raises(HomomorphismError):
            schema.check_homomorphic(query)

    def test_variable_class_rejected(self):
        schema = blogger_schema()
        x, c = Variable("x"), Variable("c")
        query = BGPQuery([x], [TriplePattern(x, RDF_TYPE, c)])
        with pytest.raises(HomomorphismError):
            schema.check_homomorphic(query)

    def test_conflicting_class_constraints_rejected(self):
        schema = blogger_schema()
        # ?y is forced to be both a City (livesIn target) and a Site (postedOn target).
        query = parse_query("q(?x) :- ?x ex:livesIn ?y, ?p ex:postedOn ?y")
        with pytest.raises(HomomorphismError):
            schema.check_homomorphic(query)

    def test_consistent_shared_variable_accepted(self):
        schema = blogger_schema()
        # ?p is a BlogPost from both wrotePost (target) and postedOn (source).
        query = parse_query("q(?x) :- ?x ex:wrotePost ?p, ?p ex:postedOn ?s")
        schema.check_homomorphic(query)


class TestDescribe:
    def test_describe_lists_classes_and_properties(self):
        schema = blogger_schema()
        text = schema.describe()
        assert "Blogger" in text and "wrotePost" in text
        assert "classes" in text and "properties" in text
