"""Unit tests for AnS instance materialization."""

import pytest

from repro.rdf import EX, Graph, Literal, RDF, RDFS, Triple
from repro.bgp.parser import parse_query
from repro.analytics.instance import InstanceBuilder, materialize_instance
from repro.analytics.schema import AnalyticalSchema
from repro.datagen.blogger import blogger_schema

RDF_TYPE = RDF.term("type")


@pytest.fixture()
def base_graph() -> Graph:
    graph = Graph()
    graph.add(Triple(EX.user1, RDF_TYPE, EX.Blogger))
    graph.add(Triple(EX.user2, RDF_TYPE, EX.Blogger))
    graph.add(Triple(EX.user1, EX.hasAge, Literal(28)))
    graph.add(Triple(EX.user1, EX.livesIn, EX.Madrid))
    graph.add(Triple(EX.Madrid, RDF_TYPE, EX.City))
    graph.add(Triple(EX.user1, EX.wrotePost, EX.p1))
    graph.add(Triple(EX.p1, RDF_TYPE, EX.BlogPost))
    graph.add(Triple(EX.p1, EX.postedOn, EX.s1))
    graph.add(Triple(EX.s1, RDF_TYPE, EX.Site))
    graph.add(Triple(EX.p1, EX.hasWordCount, Literal(100)))
    return graph


class TestMaterialization:
    def test_classes_and_properties_materialized(self, base_graph):
        schema = blogger_schema()
        instance = materialize_instance(schema, base_graph)
        assert Triple(EX.user1, RDF_TYPE, EX.Blogger) in instance
        assert Triple(EX.user1, EX.livesIn, EX.Madrid) in instance
        assert Triple(EX.p1, EX.hasWordCount, Literal(100)) in instance

    def test_literal_class_members_are_skipped_not_errors(self, base_graph):
        schema = blogger_schema()
        instance = materialize_instance(schema, base_graph)
        # The Age class extent is {28}, a literal: no rdf:type triple is
        # produced for it, and materialization does not fail.
        assert len(list(instance.triples(None, RDF_TYPE, EX.Age))) == 0

    def test_instance_only_contains_schema_vocabulary(self, base_graph):
        base_graph.add(Triple(EX.user1, EX.irrelevantProperty, Literal("noise")))
        schema = blogger_schema()
        instance = materialize_instance(schema, base_graph)
        assert len(list(instance.triples(None, EX.irrelevantProperty, None))) == 0

    def test_instance_graph_is_named(self, base_graph):
        instance = materialize_instance(blogger_schema(), base_graph, name="my_instance")
        assert instance.name == "my_instance"

    def test_empty_base_graph_gives_empty_instance(self):
        instance = materialize_instance(blogger_schema(), Graph())
        assert len(instance) == 0


class TestCustomLenses:
    def test_analysis_class_defined_by_a_join_query(self, base_graph):
        """An AnS node can be defined by an arbitrary unary query (a 'lens')."""
        schema = AnalyticalSchema(namespace=EX)
        schema.add_class(
            "ActiveBlogger",
            parse_query("def(?x) :- ?x rdf:type ex:Blogger, ?x ex:wrotePost ?p"),
        )
        instance = materialize_instance(schema, base_graph)
        members = set(instance.instances_of(EX.ActiveBlogger))
        assert members == {EX.user1}

    def test_analysis_property_defined_by_a_path_query(self, base_graph):
        """An AnS edge can join several base properties into one analysis property."""
        schema = AnalyticalSchema(namespace=EX)
        schema.add_class_from_type("Blogger")
        schema.add_class_from_type("Site")
        schema.add_property(
            "postsOnSite",
            "Blogger",
            "Site",
            parse_query("def(?x, ?s) :- ?x ex:wrotePost ?p, ?p ex:postedOn ?s"),
        )
        instance = materialize_instance(schema, base_graph)
        assert Triple(EX.user1, EX.postsOnSite, EX.s1) in instance


class TestIncrementalBuilder:
    def test_populate_single_class_and_property(self, base_graph):
        schema = blogger_schema()
        builder = InstanceBuilder(schema, base_graph)
        instance = Graph()
        added_classes = builder.populate_class(instance, EX.Blogger)
        assert added_classes == 2
        added_properties = builder.populate_property(instance, EX.livesIn)
        assert added_properties == 1
        assert Triple(EX.user1, EX.livesIn, EX.Madrid) in instance

    def test_populate_all_matches_build(self, base_graph):
        schema = blogger_schema()
        via_build = InstanceBuilder(schema, base_graph).build()
        incremental = Graph()
        builder = InstanceBuilder(schema, base_graph)
        builder.populate_classes(incremental)
        builder.populate_properties(incremental)
        assert incremental == via_build


class TestSaturatedBase:
    def test_rdfs_saturation_feeds_class_definitions(self):
        graph = Graph()
        graph.add(Triple(EX.PowerBlogger, RDFS.term("subClassOf"), EX.Blogger))
        graph.add(Triple(EX.user9, RDF_TYPE, EX.PowerBlogger))
        schema = AnalyticalSchema(namespace=EX)
        schema.add_class_from_type("Blogger")
        without = materialize_instance(schema, graph, saturate_base=False)
        with_saturation = materialize_instance(schema, graph, saturate_base=True)
        assert Triple(EX.user9, RDF_TYPE, EX.Blogger) not in without
        assert Triple(EX.user9, RDF_TYPE, EX.Blogger) in with_saturation
