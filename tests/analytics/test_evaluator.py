"""Tests for from-scratch AnQ evaluation against the paper's worked examples."""

import pytest

from repro.errors import MaterializationError
from repro.rdf import EX, Literal
from repro.algebra.operators import project
from repro.analytics.answer import KeyGenerator
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import KEY_COLUMN
from repro.analytics.sigma import DimensionRestriction

from tests.conftest import make_sites_query, make_words_query


class TestKeyGenerator:
    def test_sequential_keys(self):
        newk = KeyGenerator()
        assert [newk(), newk(), newk()] == [1, 2, 3]

    def test_custom_start(self):
        newk = KeyGenerator(start=10)
        assert newk() == 10


class TestExample2:
    """Example 2: count of posting sites by (age, city)."""

    def test_classifier_result(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        result = evaluator.classifier_result(sites_query)
        assert result.set_equal(result)  # classifier has set semantics: no dup rows
        rows = set(result.rows)
        assert rows == {
            (EX.user1, Literal(28), EX.term("Madrid")),
            (EX.user3, Literal(35), EX.term("NY")),
            (EX.user4, Literal(35), EX.term("NY")),
        }

    def test_measure_result_is_a_bag(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        result = evaluator.measure_result(sites_query)
        multiset = result.to_multiset()
        # user1's bag is {|s1, s1, s2|}: two embeddings onto s1.
        assert multiset[(EX.user1, EX.term("s1"))] == 2
        assert multiset[(EX.user1, EX.term("s2"))] == 1
        assert multiset[(EX.user3, EX.term("s2"))] == 1
        assert multiset[(EX.user4, EX.term("s3"))] == 1

    def test_extended_measure_result_keys_every_tuple(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        keyed = evaluator.extended_measure_result(sites_query)
        assert keyed.columns == (KEY_COLUMN, "x", "vsite")
        keys = keyed.column_values(KEY_COLUMN)
        assert len(keys) == len(set(keys)) == 5
        # Dropping the key recovers exactly the bag m(I).
        assert project(keyed, ("x", "vsite")).bag_equal(evaluator.measure_result(sites_query))

    def test_answer_matches_example2(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        answer = evaluator.answer(sites_query)
        cells = {row[:2]: row[2] for row in answer.relation}
        assert cells == {
            (Literal(28), EX.term("Madrid")): 3,
            (Literal(35), EX.term("NY")): 2,
        }

    def test_equation3_matches_definition1(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        via_pres = evaluator.answer(sites_query)
        via_definition = evaluator.answer_definition1(sites_query)
        assert via_pres.relation.set_equal(via_definition.relation)


class TestExample4:
    """Example 4: average word count by (age, city)."""

    def test_partial_result_layout_and_contents(self, example4_instance, words_query):
        evaluator = AnalyticalQueryEvaluator(example4_instance)
        partial = evaluator.partial_result(words_query)
        assert partial.columns == ("x", "dage", "dcity", "k", "vwords")
        assert len(partial) == 4
        assert partial.facts() == {EX.user1, EX.user3, EX.user4}

    def test_answer_matches_example4(self, example4_instance, words_query):
        evaluator = AnalyticalQueryEvaluator(example4_instance)
        answer = evaluator.answer(words_query)
        cells = {(row[0], row[1]): row[2] for row in answer.relation}
        assert cells[(Literal(28), EX.term("Madrid"))] == pytest.approx(210.0)
        assert cells[(Literal(35), EX.term("NY"))] == pytest.approx(570.0)

    def test_dice_restriction_on_sigma(self, example4_instance, words_query):
        """The Σ-restricted query of Example 4 keeps only the 20-30 age range."""
        evaluator = AnalyticalQueryEvaluator(example4_instance)
        diced = words_query.with_sigma(
            words_query.sigma.restrict("dage", DimensionRestriction.to_range(20, 30))
        )
        answer = evaluator.answer(diced)
        cells = {(row[0], row[1]): row[2] for row in answer.relation}
        assert cells == {(Literal(28), EX.term("Madrid")): pytest.approx(210.0)}

    def test_facts_without_measures_do_not_contribute(self, example4_instance, words_query):
        """A blogger with age and city but no posts yields no cube cell."""
        from repro.rdf import RDF, Triple

        example4_instance.add(Triple(EX.term("user9"), RDF.term("type"), EX.Blogger))
        example4_instance.add(Triple(EX.term("user9"), EX.hasAge, Literal(50)))
        example4_instance.add(Triple(EX.term("user9"), EX.livesIn, EX.term("Oslo")))
        evaluator = AnalyticalQueryEvaluator(example4_instance)
        answer = evaluator.answer(words_query)
        ages = {row[0] for row in answer.relation}
        assert Literal(50) not in ages

    def test_facts_without_dimension_values_do_not_contribute(self, example4_instance, words_query):
        """A blogger with posts but no city is absent from the classifier, hence the cube."""
        from repro.rdf import RDF, Triple

        example4_instance.add(Triple(EX.term("user8"), RDF.term("type"), EX.Blogger))
        example4_instance.add(Triple(EX.term("user8"), EX.hasAge, Literal(60)))
        example4_instance.add(Triple(EX.term("user8"), EX.wrotePost, EX.term("p9")))
        example4_instance.add(Triple(EX.term("p9"), EX.hasWordCount, Literal(1000)))
        evaluator = AnalyticalQueryEvaluator(example4_instance)
        answer = evaluator.answer(words_query)
        assert all(row[0] != Literal(60) for row in answer.relation)


class TestIntermediaryResult:
    def test_equation1_pres_projection_equals_int_projection(self, example2_instance, sites_query):
        """π_{x,d,v}(int(Q)) = π_{x,d,v}(pres(Q)) — Equation (1)."""
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        partial = evaluator.partial_result(sites_query)
        intermediary = evaluator.intermediary_result(sites_query)
        columns = ("x", "dage", "dcity", "vsite")
        assert project(partial.relation, columns).set_equal(project(intermediary, columns))

    def test_int_contains_measure_body_variables(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        intermediary = evaluator.intermediary_result(sites_query)
        assert "p" in intermediary.columns  # the existential post variable

    def test_clashing_measure_variable_is_renamed(self, example2_instance):
        """A measure body variable named like a classifier dimension must not collide."""
        from repro.bgp.parser import parse_query
        from repro.analytics.query import AnalyticalQuery

        classifier = parse_query(
            "c(?x, ?dage) :- ?x rdf:type ex:Blogger, ?x ex:hasAge ?dage"
        )
        measure = parse_query(
            "m(?x, ?vsite) :- ?x ex:wrotePost ?dage, ?dage ex:postedOn ?vsite"
        )
        query = AnalyticalQuery(classifier, measure, "count")
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        intermediary = evaluator.intermediary_result(query)
        assert "m_dage" in intermediary.columns


class TestMaterializedResults:
    def test_evaluate_keeps_answer_and_partial(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query)
        assert materialized.has_answer() and materialized.has_partial()
        assert len(materialized.answer) == 2
        assert len(materialized.partial) == 5

    def test_evaluate_without_partial(self, example2_instance, sites_query):
        evaluator = AnalyticalQueryEvaluator(example2_instance)
        materialized = evaluator.evaluate(sites_query, materialize_partial=False)
        assert materialized.has_answer() and not materialized.has_partial()
        with pytest.raises(MaterializationError):
            _ = materialized.partial

    def test_empty_instance_gives_empty_answer(self, sites_query):
        from repro.rdf import Graph

        evaluator = AnalyticalQueryEvaluator(Graph())
        assert len(evaluator.answer(sites_query)) == 0
