"""Unit tests for analytical queries (AnQ) and their validation."""

import pytest

from repro.errors import HomomorphismError, QueryDefinitionError
from repro.rdf import EX, RDF
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.parser import parse_query
from repro.analytics.query import KEY_COLUMN, AnalyticalQuery
from repro.analytics.sigma import DimensionRestriction, Sigma
from repro.datagen.blogger import blogger_schema

from tests.conftest import make_sites_query

RDF_TYPE = RDF.term("type")


def classifier():
    return parse_query(
        "c(?x, ?dage, ?dcity) :- ?x rdf:type ex:Blogger, ?x ex:hasAge ?dage, ?x ex:livesIn ?dcity"
    )


def measure():
    return parse_query(
        "m(?x, ?vsite) :- ?x rdf:type ex:Blogger, ?x ex:wrotePost ?p, ?p ex:postedOn ?vsite"
    )


class TestConstruction:
    def test_example1_query(self):
        query = AnalyticalQuery(classifier(), measure(), "count", name="Q")
        assert query.fact_variable == Variable("x")
        assert query.dimension_names == ("dage", "dcity")
        assert query.measure_variable == Variable("vsite")
        assert query.aggregate.name == "count"
        assert query.arity == 2
        assert not query.is_extended()

    def test_aggregate_can_be_function_object(self):
        from repro.algebra.aggregates import SUM

        query = AnalyticalQuery(classifier(), measure(), SUM)
        assert query.aggregate is SUM

    def test_unknown_aggregate_rejected(self):
        from repro.errors import AggregationError

        with pytest.raises(AggregationError):
            AnalyticalQuery(classifier(), measure(), "median")

    def test_measure_must_be_binary(self):
        bad_measure = parse_query("m(?x, ?p, ?v) :- ?x ex:wrotePost ?p, ?p ex:postedOn ?v")
        with pytest.raises(QueryDefinitionError):
            AnalyticalQuery(classifier(), bad_measure, "count")

    def test_classifier_and_measure_must_share_fact_variable(self):
        other_measure = parse_query("m(?y, ?v) :- ?y ex:wrotePost ?p, ?p ex:postedOn ?v")
        with pytest.raises(QueryDefinitionError):
            AnalyticalQuery(classifier(), other_measure, "count")

    def test_disconnected_classifier_rejected(self):
        bad_classifier = parse_query("c(?x, ?d) :- ?x rdf:type ex:Blogger, ?z ex:livesIn ?d")
        with pytest.raises(Exception):
            AnalyticalQuery(bad_classifier, measure(), "count")

    def test_dimension_name_clash_with_key_column(self):
        bad_classifier = parse_query("c(?x, ?k) :- ?x rdf:type ex:Blogger, ?x ex:hasAge ?k")
        with pytest.raises(QueryDefinitionError):
            AnalyticalQuery(bad_classifier, measure(), "count")

    def test_dimension_name_clash_with_measure_variable(self):
        clashing_classifier = parse_query(
            "c(?x, ?vsite) :- ?x rdf:type ex:Blogger, ?x ex:livesIn ?vsite"
        )
        with pytest.raises(QueryDefinitionError):
            AnalyticalQuery(clashing_classifier, measure(), "count")

    def test_sigma_must_match_dimensions(self):
        with pytest.raises(QueryDefinitionError):
            AnalyticalQuery(classifier(), measure(), "count", sigma=Sigma(["other"]))

    def test_schema_validation(self):
        schema = blogger_schema()
        AnalyticalQuery(classifier(), measure(), "count", schema=schema)
        bad_measure = parse_query("m(?x, ?v) :- ?x ex:unknownProperty ?v")
        with pytest.raises(HomomorphismError):
            AnalyticalQuery(classifier(), bad_measure, "count", schema=schema)

    def test_zero_dimension_query_is_allowed(self):
        global_classifier = parse_query("c(?x) :- ?x rdf:type ex:Blogger")
        query = AnalyticalQuery(global_classifier, measure(), "count")
        assert query.dimension_names == ()


class TestDerivedQueries:
    def test_measure_bar_exposes_all_body_variables(self):
        query = AnalyticalQuery(classifier(), measure(), "count")
        bar = query.measure_bar()
        assert set(bar.head_names) == {"x", "vsite", "p"}
        assert bar.head_names[0] == "x"

    def test_with_sigma_preserves_everything_else(self):
        query = AnalyticalQuery(classifier(), measure(), "count", name="Q")
        sigma = query.sigma.restrict("dage", DimensionRestriction.to_value(28))
        sliced = query.with_sigma(sigma, name="Q_slice")
        assert sliced.is_extended()
        assert sliced.classifier == query.classifier
        assert sliced.measure == query.measure
        assert sliced.aggregate.name == "count"
        assert sliced.name == "Q_slice"

    def test_with_dimensions_removing(self):
        query = AnalyticalQuery(classifier(), measure(), "count")
        reduced = query.with_dimensions(["dcity"])
        assert reduced.dimension_names == ("dcity",)
        assert reduced.classifier.body == query.classifier.body

    def test_with_dimensions_requires_body_variables(self):
        query = AnalyticalQuery(classifier(), measure(), "count")
        with pytest.raises(QueryDefinitionError):
            query.with_dimensions(["dcity", "dbrowser"])

    def test_describe_mentions_components(self):
        query = make_sites_query()
        text = query.describe()
        assert "classifier" in text and "measure" in text and "count" in text
        assert "Σ" in text


class TestEquality:
    def test_queries_with_same_components_are_equal(self):
        a = AnalyticalQuery(classifier(), measure(), "count")
        b = AnalyticalQuery(classifier(), measure(), "count")
        assert a == b

    def test_different_aggregate_breaks_equality(self):
        a = AnalyticalQuery(classifier(), measure(), "count")
        b = AnalyticalQuery(classifier(), measure(), "sum")
        assert a != b

    def test_different_sigma_breaks_equality(self):
        a = AnalyticalQuery(classifier(), measure(), "count")
        b = a.with_sigma(a.sigma.restrict("dage", DimensionRestriction.to_value(28)))
        assert a != b
