"""Unit tests for the SPARQL 1.1 export of analytical queries."""

import pytest

from repro.errors import QueryDefinitionError
from repro.rdf import EX, Literal
from repro.rdf.namespaces import PrefixMap
from repro.analytics import AnalyticalQuery
from repro.analytics.sigma import DimensionRestriction
from repro.analytics.sparql import SPARQL_AGGREGATES, to_sparql
from repro.olap import Dice, Slice

from tests.conftest import make_sites_query, make_words_query


@pytest.fixture()
def prefixes() -> PrefixMap:
    prefix_map = PrefixMap()
    prefix_map.bind("ex", "http://example.org/")
    return prefix_map


class TestBasicRendering:
    def test_contains_grouping_and_aggregate(self, prefixes):
        text = to_sparql(make_sites_query(), prefixes)
        assert "SELECT ?dage ?dcity (COUNT(?vsite) AS ?agg)" in text
        assert text.strip().endswith("GROUP BY ?dage ?dcity")

    def test_classifier_is_a_distinct_subselect(self, prefixes):
        text = to_sparql(make_sites_query(), prefixes)
        assert "SELECT DISTINCT ?x ?dage ?dcity WHERE {" in text
        assert "?x ex:hasAge ?dage ." in text

    def test_measure_body_in_outer_pattern(self, prefixes):
        text = to_sparql(make_sites_query(), prefixes)
        outer = text.split("}", 1)[1]  # after the inner select's closing brace
        assert "?x ex:wrotePost ?p ." in text
        assert "?p ex:postedOn ?vsite ." in text

    def test_prefix_declarations_emitted(self, prefixes):
        text = to_sparql(make_sites_query(), prefixes)
        assert text.startswith("PREFIX ex: <http://example.org/>")

    def test_without_prefixes_uses_full_iris(self):
        text = to_sparql(make_sites_query())
        assert "<http://example.org/hasAge>" in text

    def test_avg_aggregate(self, prefixes):
        text = to_sparql(make_words_query(), prefixes)
        assert "(AVG(?vwords) AS ?agg)" in text

    def test_every_registered_aggregate_has_a_template(self):
        for name in ("count", "count_distinct", "sum", "avg", "min", "max"):
            assert name in SPARQL_AGGREGATES

    def test_unknown_aggregate_rejected(self):
        from repro.algebra.aggregates import AggregateFunction

        median = AggregateFunction("median", lambda values: 0, distributive=False)
        query = make_sites_query()
        weird = AnalyticalQuery(query.classifier, query.measure, median)
        with pytest.raises(QueryDefinitionError):
            to_sparql(weird)


class TestSigmaRendering:
    def test_value_restriction_becomes_values_block(self, prefixes):
        query = Dice({"dcity": [EX.term("Madrid"), EX.term("NY")]}).apply(make_sites_query())
        text = to_sparql(query, prefixes)
        assert "VALUES ?dcity {" in text
        assert "ex:Madrid" in text and "ex:NY" in text

    def test_slice_becomes_singleton_values_block(self, prefixes):
        query = Slice("dage", Literal(35)).apply(make_sites_query())
        text = to_sparql(query, prefixes)
        assert 'VALUES ?dage { "35"' in text

    def test_range_restriction_becomes_filter(self, prefixes):
        query = Dice({"dage": (20, 30)}).apply(make_sites_query())
        text = to_sparql(query, prefixes)
        assert "FILTER(?dage >= 20 && ?dage <= 30)" in text

    def test_predicate_restriction_rejected(self, prefixes):
        query = make_sites_query()
        restricted = query.with_sigma(
            query.sigma.restrict(
                "dage", DimensionRestriction.to_predicate(lambda value: True, "custom predicate")
            )
        )
        with pytest.raises(QueryDefinitionError):
            to_sparql(restricted, prefixes)

    def test_unrestricted_sigma_adds_no_filters(self, prefixes):
        text = to_sparql(make_sites_query(), prefixes)
        assert "VALUES" not in text and "FILTER" not in text


class TestZeroDimensionQuery:
    def test_global_aggregate_has_no_group_by(self, prefixes):
        from repro.bgp.parser import parse_query

        classifier = parse_query("c(?x) :- ?x rdf:type ex:Blogger")
        measure = make_sites_query().measure
        query = AnalyticalQuery(classifier, measure, "count")
        text = to_sparql(query, prefixes)
        assert "GROUP BY" not in text
        assert "SELECT (COUNT(?vsite) AS ?agg)" in text
