"""Unit tests for Σ (dimension restrictions of extended analytical queries)."""

import pytest

from repro.errors import SigmaError
from repro.rdf import EX, Literal
from repro.analytics.sigma import DimensionRestriction, Sigma


class TestDimensionRestriction:
    def test_full_restriction_allows_everything(self):
        full = DimensionRestriction.full()
        assert full.is_full
        assert full.allows(Literal(28))
        assert full.allows("anything")

    def test_value_set_restriction(self):
        restriction = DimensionRestriction.to_values([Literal(28), Literal(35)])
        assert not restriction.is_full
        assert restriction.allows(Literal(28))
        assert restriction.allows(28)  # via comparable conversion
        assert not restriction.allows(Literal(40))

    def test_single_value_restriction(self):
        restriction = DimensionRestriction.to_value(EX.Madrid)
        assert restriction.allows(EX.Madrid)
        assert not restriction.allows(EX.Kyoto)
        assert restriction.values == (EX.Madrid,)

    def test_empty_value_set_rejected(self):
        with pytest.raises(SigmaError):
            DimensionRestriction.to_values([])

    def test_range_restriction(self):
        restriction = DimensionRestriction.to_range(20, 30)
        assert restriction.allows(Literal(20)) and restriction.allows(Literal(30))
        assert not restriction.allows(Literal(31))
        exclusive = DimensionRestriction.to_range(20, 30, inclusive=False)
        assert not exclusive.allows(Literal(20))

    def test_range_fails_closed_on_non_comparable(self):
        restriction = DimensionRestriction.to_range(20, 30)
        assert not restriction.allows(Literal("Madrid"))

    def test_predicate_restriction(self):
        restriction = DimensionRestriction.to_predicate(lambda value: str(value).startswith("M"), "starts with M")
        assert restriction.allows("Madrid")
        assert not restriction.allows("Kyoto")
        assert restriction.description == "starts with M"

    def test_values_and_predicate_mutually_exclusive(self):
        with pytest.raises(SigmaError):
            DimensionRestriction(values=[1], predicate=lambda v: True)

    def test_intersection_of_value_sets(self):
        a = DimensionRestriction.to_values([1, 2, 3])
        b = DimensionRestriction.to_values([2, 3, 4])
        both = a.intersect(b)
        assert both.allows(2) and both.allows(3)
        assert not both.allows(1) and not both.allows(4)

    def test_intersection_with_full_is_identity(self):
        values = DimensionRestriction.to_values([1])
        assert values.intersect(DimensionRestriction.full()) is values
        assert DimensionRestriction.full().intersect(values) is values

    def test_empty_intersection_rejected(self):
        with pytest.raises(SigmaError):
            DimensionRestriction.to_values([1]).intersect(DimensionRestriction.to_values([2]))

    def test_intersection_with_predicate(self):
        values = DimensionRestriction.to_values([1, 25, 40])
        in_range = DimensionRestriction.to_range(20, 30)
        both = values.intersect(in_range)
        assert both.allows(25)
        assert not both.allows(1) and not both.allows(40)

    def test_equality(self):
        assert DimensionRestriction.full() == DimensionRestriction.full()
        assert DimensionRestriction.to_values([1, 2]) == DimensionRestriction.to_values([2, 1])
        assert DimensionRestriction.to_values([1]) != DimensionRestriction.full()


class TestSigma:
    def test_default_is_unrestricted(self):
        sigma = Sigma(["dage", "dcity"])
        assert sigma.is_unrestricted()
        assert sigma.dimensions == ("dage", "dcity")
        assert sigma["dage"].is_full

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(SigmaError):
            Sigma(["d", "d"])

    def test_restrict_returns_new_sigma(self):
        sigma = Sigma(["dage", "dcity"])
        restricted = sigma.restrict("dage", DimensionRestriction.to_value(35))
        assert sigma.is_unrestricted()
        assert not restricted.is_unrestricted()
        assert restricted.restricted_dimensions() == ("dage",)

    def test_restrict_unknown_dimension(self):
        with pytest.raises(SigmaError):
            Sigma(["dage"]).restrict("nope", DimensionRestriction.full())

    def test_restrictions_must_be_dimension_restrictions(self):
        with pytest.raises(SigmaError):
            Sigma(["d"], {"d": [1, 2, 3]})  # type: ignore[dict-item]

    def test_allows_row_implements_sigma_dice(self):
        sigma = Sigma(["dage", "dcity"]).restrict_many(
            {
                "dage": DimensionRestriction.to_range(20, 30),
                "dcity": DimensionRestriction.to_values([EX.Madrid, EX.Kyoto]),
            }
        )
        assert sigma.allows_row({"dage": Literal(28), "dcity": EX.Madrid, "v": 7})
        assert not sigma.allows_row({"dage": Literal(35), "dcity": EX.Madrid})
        assert not sigma.allows_row({"dage": Literal(28), "dcity": EX.term("NY")})

    def test_allows_row_ignores_absent_dimensions(self):
        sigma = Sigma(["dage", "dcity"]).restrict("dage", DimensionRestriction.to_value(28))
        assert sigma.allows_row({"dcity": EX.Madrid})

    def test_without_drops_dimensions(self):
        sigma = Sigma(["dage", "dcity"]).restrict("dage", DimensionRestriction.to_value(28))
        reduced = sigma.without(["dage"])
        assert reduced.dimensions == ("dcity",)
        with pytest.raises(SigmaError):
            sigma.without(["nope"])

    def test_with_new_adds_full_dimensions(self):
        sigma = Sigma(["dage"]).with_new(["dcity"])
        assert sigma.dimensions == ("dage", "dcity")
        assert sigma["dcity"].is_full
        with pytest.raises(SigmaError):
            sigma.with_new(["dage"])

    def test_reorder(self):
        sigma = Sigma(["dage", "dcity"]).restrict("dage", DimensionRestriction.to_value(28))
        reordered = sigma.reorder(["dcity", "dage"])
        assert reordered.dimensions == ("dcity", "dage")
        assert not reordered["dage"].is_full
        with pytest.raises(SigmaError):
            sigma.reorder(["dage"])

    def test_equality_and_describe(self):
        a = Sigma(["dage"]).restrict("dage", DimensionRestriction.to_values([28]))
        b = Sigma(["dage"]).restrict("dage", DimensionRestriction.to_values([28]))
        assert a == b
        assert "dage" in a.describe()


class TestCanonicalTokens:
    def test_full_token(self):
        assert DimensionRestriction.full().canonical_token() == "*"

    def test_value_sets_canonicalize_order_insensitively(self):
        a = DimensionRestriction.to_values([Literal(28), Literal(35)])
        b = DimensionRestriction.to_values([Literal(35), Literal(28)])
        assert a.canonical_token() == b.canonical_token()

    def test_value_sets_distinguish_contents(self):
        a = DimensionRestriction.to_values([Literal(28)])
        b = DimensionRestriction.to_values([Literal(29)])
        assert a.canonical_token() != b.canonical_token()

    def test_ranges_canonicalize_by_bounds(self):
        assert (
            DimensionRestriction.to_range(20, 30).canonical_token()
            == DimensionRestriction.to_range(20, 30).canonical_token()
        )
        assert (
            DimensionRestriction.to_range(20, 30).canonical_token()
            != DimensionRestriction.to_range(20, 31).canonical_token()
        )

    def test_opaque_predicates_canonicalize_by_identity(self):
        even = DimensionRestriction.to_predicate(lambda v: True)
        other = DimensionRestriction.to_predicate(lambda v: True)
        assert even.canonical_token() != other.canonical_token()
        assert even.canonical_token() == even.canonical_token()

    def test_sigma_tokens_follow_dimension_order(self):
        sigma = Sigma(["dage", "dcity"]).restrict(
            "dage", DimensionRestriction.to_value(Literal(28))
        )
        tokens = sigma.canonical_tokens()
        assert [name for name, _ in tokens] == ["dage", "dcity"]
        assert tokens[1][1] == "*"


class TestSubsumption:
    def test_full_subsumes_everything(self):
        full = DimensionRestriction.full()
        narrow = DimensionRestriction.to_value(Literal(28))
        assert full.subsumes(narrow)
        assert not narrow.subsumes(full)

    def test_value_set_superset_subsumes(self):
        wide = DimensionRestriction.to_values([Literal(28), Literal(35)])
        narrow = DimensionRestriction.to_values([Literal(35)])
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)

    def test_range_subsumes_contained_values(self):
        in_range = DimensionRestriction.to_range(20, 40)
        values = DimensionRestriction.to_values([Literal(25), Literal(30)])
        assert in_range.subsumes(values)
        assert not in_range.subsumes(DimensionRestriction.to_values([Literal(45)]))

    def test_range_subsumes_narrower_range(self):
        assert DimensionRestriction.to_range(20, 40).subsumes(
            DimensionRestriction.to_range(25, 30)
        )
        assert not DimensionRestriction.to_range(25, 30).subsumes(
            DimensionRestriction.to_range(20, 40)
        )

    def test_sigma_subsumption_is_pointwise(self):
        weaker = Sigma(["dage", "dcity"]).restrict(
            "dage", DimensionRestriction.to_values([Literal(28), Literal(35)])
        )
        stronger = weaker.restrict("dcity", DimensionRestriction.to_value(EX.term("NY"))).restrict(
            "dage", DimensionRestriction.to_value(Literal(35))
        )
        assert weaker.subsumes(stronger)
        assert not stronger.subsumes(weaker)

    def test_sigma_subsumption_requires_same_dimensions(self):
        assert not Sigma(["dage"]).subsumes(Sigma(["dcity"]))
