"""Structural validation of the mkdocs documentation site.

``mkdocs build --strict`` runs in CI (mkdocs-material is not a test
dependency); this suite is the local proxy that catches the same classes
of rot without the toolchain: nav entries pointing at missing pages,
pages missing from the nav, broken relative links between pages, and
mkdocstrings ``:::`` targets that no longer import.
"""

import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


def _load_config():
    # mkdocs.yml may use tags like !!python/name for material extensions;
    # this site's config is plain YAML on purpose, so safe_load suffices.
    return yaml.safe_load(MKDOCS_YML.read_text())


def _nav_files(nav) -> list:
    files = []
    for item in nav:
        if isinstance(item, dict):
            for value in item.values():
                if isinstance(value, str):
                    files.append(value)
                else:
                    files.extend(_nav_files(value))
        elif isinstance(item, str):
            files.append(item)
    return files


def test_mkdocs_config_parses():
    config = _load_config()
    assert config["site_name"]
    assert config["nav"]


def test_every_nav_entry_exists():
    for entry in _nav_files(_load_config()["nav"]):
        assert (DOCS_DIR / entry).is_file(), f"nav entry {entry!r} has no file"


def test_every_page_is_in_the_nav():
    """Strict mkdocs builds warn about orphan pages; keep the nav total."""
    in_nav = set(_nav_files(_load_config()["nav"]))
    on_disk = {
        str(path.relative_to(DOCS_DIR)) for path in DOCS_DIR.rglob("*.md")
    }
    assert on_disk <= in_nav, f"pages missing from nav: {sorted(on_disk - in_nav)}"


_LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


def test_relative_links_resolve():
    for page in DOCS_DIR.rglob("*.md"):
        for target in _LINK.findall(page.read_text()):
            target = target.split("#")[0].strip()
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            resolved = (page.parent / target).resolve()
            assert resolved.exists(), f"{page.relative_to(REPO_ROOT)}: broken link {target!r}"


def test_readme_links_into_docs_resolve():
    readme = REPO_ROOT / "README.md"
    for target in _LINK.findall(readme.read_text()):
        target = target.split("#")[0].strip()
        if not target or "://" in target:
            continue
        assert (REPO_ROOT / target).exists(), f"README.md: broken link {target!r}"


def test_mkdocstrings_targets_import():
    """Every ::: target must resolve to a real module attribute — the
    local equivalent of a strict mkdocstrings build failing on a missing
    object."""
    import importlib

    targets = []
    for page in (DOCS_DIR / "reference").rglob("*.md"):
        for line in page.read_text().splitlines():
            if line.startswith("::: "):
                targets.append((page.name, line[4:].strip()))
    assert targets, "no mkdocstrings targets found under docs/reference/"
    for page_name, dotted in targets:
        module_path, _, attribute = dotted.rpartition(".")
        module = importlib.import_module(module_path)
        assert hasattr(module, attribute), (
            f"{page_name}: mkdocstrings target {dotted!r} does not resolve"
        )
