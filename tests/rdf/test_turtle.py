"""Unit tests for the Turtle-subset parser and serializer."""

import pytest

from repro.errors import ParseError
from repro.rdf import EX, Graph, IRI, Literal, PrefixMap, RDF, Triple
from repro.rdf.terms import BlankNode
from repro.rdf.turtle import parse_turtle, serialize_turtle, load_turtle, dump_turtle

RDF_TYPE = RDF.term("type")


class TestParsing:
    def test_prefixed_names_and_a_keyword(self):
        text = """
        @prefix ex: <http://example.org/> .
        ex:user1 a ex:Blogger .
        """
        graph = parse_turtle(text)
        assert Triple(EX.user1, RDF_TYPE, EX.Blogger) in graph

    def test_sparql_style_prefix(self):
        text = """
        PREFIX ex: <http://example.org/>
        ex:user1 ex:livesIn ex:Madrid .
        """
        graph = parse_turtle(text)
        assert Triple(EX.user1, EX.livesIn, EX.Madrid) in graph

    def test_predicate_and_object_lists(self):
        text = """
        @prefix ex: <http://example.org/> .
        ex:user1 a ex:Blogger ;
                 ex:hasAge 28 ;
                 ex:livesIn ex:Madrid , ex:Kyoto .
        """
        graph = parse_turtle(text)
        assert len(graph) == 4
        assert Triple(EX.user1, EX.hasAge, Literal(28)) in graph
        assert Triple(EX.user1, EX.livesIn, EX.Kyoto) in graph

    def test_numeric_boolean_shorthand(self):
        text = """
        @prefix ex: <http://example.org/> .
        ex:s ex:int 42 ; ex:dec 3.25 ; ex:dbl 1.5e2 ; ex:flag true .
        """
        graph = parse_turtle(text)
        objects = {t.predicate.local_name(): t.object for t in graph}
        assert objects["int"].to_python() == 42
        assert float(objects["dec"].to_python()) == pytest.approx(3.25)
        assert objects["dbl"].to_python() == pytest.approx(150.0)
        assert objects["flag"].to_python() is True

    def test_string_literals_with_lang_and_datatype(self):
        text = """
        @prefix ex: <http://example.org/> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        ex:s ex:name "Bill" ; ex:greeting "bonjour"@fr ; ex:age "28"^^xsd:integer .
        """
        graph = parse_turtle(text)
        objects = {t.predicate.local_name(): t.object for t in graph}
        assert objects["name"] == Literal("Bill")
        assert objects["greeting"] == Literal("bonjour", language="fr")
        assert objects["age"] == Literal(28)

    def test_base_resolution(self):
        text = """
        @base <http://example.org/> .
        <user1> <livesIn> <Madrid> .
        """
        graph = parse_turtle(text)
        assert Triple(EX.user1, EX.livesIn, EX.Madrid) in graph

    def test_blank_nodes(self):
        text = "_:b1 <http://example.org/knows> _:b2 ."
        graph = parse_turtle(text)
        assert Triple(BlankNode("b1"), EX.knows, BlankNode("b2")) in graph

    def test_comments_ignored(self):
        text = """
        @prefix ex: <http://example.org/> . # vocabulary
        # a blogger
        ex:user1 a ex:Blogger . # trailing
        """
        assert len(parse_turtle(text)) == 1

    def test_unknown_prefix_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("nope:s nope:p nope:o .")

    def test_missing_dot_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix ex: <http://example.org/> .\nex:s ex:p ex:o")

    def test_unsupported_collection_syntax_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix ex: <http://example.org/> . ex:s ex:p ( 1 2 ) .")

    def test_literal_in_subject_position_raises(self):
        with pytest.raises(ParseError):
            parse_turtle('"oops" <http://example.org/p> <http://example.org/o> .')


class TestSerialization:
    def test_roundtrip(self):
        graph = Graph()
        graph.add(Triple(EX.user1, RDF_TYPE, EX.Blogger))
        graph.add(Triple(EX.user1, EX.hasAge, Literal(28)))
        graph.add(Triple(EX.user1, EX.identifiedBy, Literal("Bill")))
        graph.add(Triple(EX.user1, EX.livesIn, EX.Madrid))
        prefixes = PrefixMap()
        prefixes.bind("ex", "http://example.org/")
        text = serialize_turtle(graph, prefixes)
        assert "ex:user1" in text
        assert parse_turtle(text) == graph

    def test_rdf_type_rendered_as_a(self):
        graph = Graph([Triple(EX.user1, RDF_TYPE, EX.Blogger)])
        prefixes = PrefixMap()
        prefixes.bind("ex", "http://example.org/")
        assert " a ex:Blogger" in serialize_turtle(graph, prefixes)

    def test_numeric_shorthand_in_output(self):
        graph = Graph([Triple(EX.user1, EX.hasAge, Literal(28))])
        prefixes = PrefixMap()
        prefixes.bind("ex", "http://example.org/")
        assert "ex:hasAge 28" in serialize_turtle(graph, prefixes)

    def test_unbound_namespace_falls_back_to_full_iri(self):
        graph = Graph([Triple(EX.user1, EX.hasAge, Literal(28))])
        text = serialize_turtle(graph, PrefixMap(bind_defaults=False))
        assert "<http://example.org/user1>" in text

    def test_file_roundtrip(self, tmp_path):
        graph = Graph([Triple(EX.user1, EX.livesIn, EX.Madrid)])
        path = str(tmp_path / "data.ttl")
        dump_turtle(graph, path)
        assert load_turtle(path) == graph


class TestMoreMalformedInputs:
    """Additional error paths: precise rejections for the unsupported subset."""

    def test_anonymous_blank_node_syntax_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix ex: <http://example.org/> . ex:s ex:p [ ex:q 1 ] .")

    def test_missing_object_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix ex: <http://example.org/> . ex:s ex:p .")

    def test_truncated_document_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix ex: <http://example.org/> . ex:s ex:p")

    def test_prefix_declaration_without_iri_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix ex: ex:oops .")

    def test_at_prefix_missing_final_dot_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix ex: <http://example.org/>\nex:s ex:p ex:o .")

    def test_numeric_predicate_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("@prefix ex: <http://example.org/> . ex:s 42 ex:o .")

    def test_datatype_must_be_an_iri(self):
        with pytest.raises(ParseError):
            parse_turtle('@prefix ex: <http://example.org/> . ex:s ex:p "x"^^42 .')

    def test_empty_document_parses_to_empty_graph(self):
        assert len(parse_turtle("")) == 0
        assert len(parse_turtle("# only a comment\n")) == 0


class TestRoundtripCoverage:
    def _prefixes(self):
        prefixes = PrefixMap()
        prefixes.bind("ex", "http://example.org/")
        return prefixes

    def test_escaped_string_literal_roundtrips(self):
        graph = Graph([Triple(EX.s, EX.note, Literal('line\nbreak "quoted" \\slash'))])
        text = serialize_turtle(graph, self._prefixes())
        assert parse_turtle(text) == graph

    def test_language_and_datatype_literals_roundtrip(self):
        graph = Graph()
        graph.add(Triple(EX.s, EX.greeting, Literal("bonjour", language="fr")))
        graph.add(Triple(EX.s, EX.score, Literal(3.25)))
        graph.add(Triple(EX.s, EX.flag, Literal(True)))
        text = serialize_turtle(graph, self._prefixes())
        assert parse_turtle(text) == graph

    def test_blank_nodes_roundtrip(self):
        graph = Graph([Triple(BlankNode("b0"), EX.knows, BlankNode("b1"))])
        text = serialize_turtle(graph, self._prefixes())
        assert parse_turtle(text) == graph

    def test_generated_instance_roundtrips(self):
        # Same at-scale round-trip discipline as the N-Triples suite: the
        # Turtle path must carry a full generated benchmark instance.
        from repro.datagen import VideoConfig, video_dataset

        instance = video_dataset(VideoConfig(videos=20, websites=6, seed=3)).instance
        assert parse_turtle(serialize_turtle(instance, self._prefixes())) == instance

    def test_turtle_and_ntriples_agree(self):
        from repro.rdf.ntriples import parse_ntriples, serialize_ntriples

        graph = Graph()
        graph.add(Triple(EX.user1, RDF_TYPE, EX.Blogger))
        graph.add(Triple(EX.user1, EX.hasAge, Literal(28)))
        graph.add(Triple(EX.user1, EX.greeting, Literal("hola", language="es")))
        via_turtle = parse_turtle(serialize_turtle(graph, self._prefixes()))
        via_ntriples = parse_ntriples(serialize_ntriples(graph))
        assert via_turtle == via_ntriples == graph
