"""Unit tests for triples and triple patterns."""

import pytest

from repro.errors import InvalidTripleError
from repro.rdf import EX, RDF
from repro.rdf.terms import BlankNode, IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern


class TestTriple:
    def test_construction_and_accessors(self):
        triple = Triple(EX.user1, EX.hasAge, Literal(28))
        assert triple.subject == EX.user1
        assert triple.predicate == EX.hasAge
        assert triple.object == Literal(28)
        assert triple.as_tuple() == (EX.user1, EX.hasAge, Literal(28))

    def test_blank_node_subject_allowed(self):
        triple = Triple(BlankNode("b1"), EX.knows, EX.user2)
        assert triple.subject == BlankNode("b1")

    def test_literal_subject_rejected(self):
        with pytest.raises(InvalidTripleError):
            Triple(Literal("x"), EX.hasAge, Literal(28))  # type: ignore[arg-type]

    def test_literal_predicate_rejected(self):
        with pytest.raises(InvalidTripleError):
            Triple(EX.user1, Literal("p"), Literal(28))  # type: ignore[arg-type]

    def test_blank_predicate_rejected(self):
        with pytest.raises(InvalidTripleError):
            Triple(EX.user1, BlankNode("b"), Literal(28))  # type: ignore[arg-type]

    def test_variable_positions_rejected(self):
        with pytest.raises(InvalidTripleError):
            Triple(Variable("x"), EX.hasAge, Literal(28))  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        a = Triple(EX.user1, EX.hasAge, Literal(28))
        b = Triple(EX.user1, EX.hasAge, Literal(28))
        c = Triple(EX.user1, EX.hasAge, Literal(29))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_n3_rendering(self):
        triple = Triple(EX.user1, EX.livesIn, EX.term("Madrid"))
        assert triple.n3() == "<http://example.org/user1> <http://example.org/livesIn> <http://example.org/Madrid> ."

    def test_iteration(self):
        triple = Triple(EX.user1, EX.hasAge, Literal(28))
        assert list(triple) == [EX.user1, EX.hasAge, Literal(28)]

    def test_immutable(self):
        triple = Triple(EX.user1, EX.hasAge, Literal(28))
        with pytest.raises(AttributeError):
            triple.subject = EX.user2  # type: ignore[misc]


class TestTriplePattern:
    def test_variables(self):
        pattern = TriplePattern(Variable("x"), EX.hasAge, Variable("dage"))
        assert pattern.variables() == {Variable("x"), Variable("dage")}

    def test_ground_pattern(self):
        pattern = TriplePattern(EX.user1, EX.hasAge, Literal(28))
        assert pattern.is_ground()
        assert pattern.to_triple() == Triple(EX.user1, EX.hasAge, Literal(28))

    def test_to_triple_rejects_open_pattern(self):
        pattern = TriplePattern(Variable("x"), EX.hasAge, Literal(28))
        with pytest.raises(InvalidTripleError):
            pattern.to_triple()

    def test_literal_subject_rejected(self):
        with pytest.raises(InvalidTripleError):
            TriplePattern(Literal("x"), EX.p, Variable("o"))

    def test_literal_predicate_rejected(self):
        with pytest.raises(InvalidTripleError):
            TriplePattern(Variable("s"), Literal("p"), Variable("o"))

    def test_matching_binds_variables(self):
        pattern = TriplePattern(Variable("x"), EX.hasAge, Variable("dage"))
        triple = Triple(EX.user1, EX.hasAge, Literal(28))
        binding = pattern.bind(triple)
        assert binding == {Variable("x"): EX.user1, Variable("dage"): Literal(28)}
        assert pattern.matches(triple)

    def test_matching_respects_existing_binding(self):
        pattern = TriplePattern(Variable("x"), EX.hasAge, Variable("dage"))
        triple = Triple(EX.user1, EX.hasAge, Literal(28))
        assert pattern.bind(triple, {Variable("x"): EX.user1}) is not None
        assert pattern.bind(triple, {Variable("x"): EX.user2}) is None

    def test_repeated_variable_must_agree(self):
        pattern = TriplePattern(Variable("x"), EX.knows, Variable("x"))
        assert pattern.matches(Triple(EX.user1, EX.knows, EX.user1))
        assert not pattern.matches(Triple(EX.user1, EX.knows, EX.user2))

    def test_constant_mismatch(self):
        pattern = TriplePattern(EX.user1, EX.hasAge, Variable("dage"))
        assert not pattern.matches(Triple(EX.user2, EX.hasAge, Literal(28)))

    def test_substitute(self):
        pattern = TriplePattern(Variable("x"), EX.hasAge, Variable("dage"))
        grounded = pattern.substitute({Variable("x"): EX.user1})
        assert grounded == TriplePattern(EX.user1, EX.hasAge, Variable("dage"))
        fully = grounded.substitute({Variable("dage"): Literal(28)})
        assert fully.is_ground()

    def test_substitute_does_not_touch_unbound(self):
        pattern = TriplePattern(Variable("x"), EX.hasAge, Variable("dage"))
        assert pattern.substitute({}) == pattern

    def test_equality_and_hash(self):
        a = TriplePattern(Variable("x"), EX.hasAge, Variable("dage"))
        b = TriplePattern(Variable("x"), EX.hasAge, Variable("dage"))
        assert a == b and hash(a) == hash(b)

    def test_rdf_type_pattern(self):
        pattern = TriplePattern(Variable("x"), RDF.term("type"), EX.Blogger)
        assert pattern.matches(Triple(EX.user1, RDF.term("type"), EX.Blogger))
