"""Unit tests for the in-memory triple store (Graph)."""

import pytest

from repro.errors import InvalidTripleError
from repro.rdf import EX, Graph, IRI, Literal, RDF, Triple
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern

RDF_TYPE = RDF.term("type")


def _encoded(graph: Graph, triple: Triple):
    return (
        graph.encode_term(triple.subject),
        graph.encode_term(triple.predicate),
        graph.encode_term(triple.object),
    )


@pytest.fixture()
def small_graph() -> Graph:
    graph = Graph(name="small")
    graph.add(Triple(EX.user1, RDF_TYPE, EX.Blogger))
    graph.add(Triple(EX.user2, RDF_TYPE, EX.Blogger))
    graph.add(Triple(EX.user1, EX.hasAge, Literal(28)))
    graph.add(Triple(EX.user2, EX.hasAge, Literal(35)))
    graph.add(Triple(EX.user1, EX.livesIn, EX.term("Madrid")))
    graph.add(Triple(EX.user1, EX.acquaintedWith, EX.user2))
    return graph


class TestMutation:
    def test_add_returns_true_only_for_new_triples(self):
        graph = Graph()
        triple = Triple(EX.user1, EX.hasAge, Literal(28))
        assert graph.add(triple) is True
        assert graph.add(triple) is False
        assert len(graph) == 1

    def test_add_accepts_plain_tuples(self):
        graph = Graph()
        graph.add((EX.user1, EX.hasAge, Literal(28)))
        assert Triple(EX.user1, EX.hasAge, Literal(28)) in graph

    def test_add_rejects_garbage(self):
        graph = Graph()
        with pytest.raises(InvalidTripleError):
            graph.add("not a triple")
        with pytest.raises(InvalidTripleError):
            graph.add((Literal("s"), EX.p, EX.o))

    def test_add_all_counts_new_triples(self, small_graph):
        graph = Graph()
        assert graph.add_all(small_graph) == len(small_graph)
        assert graph.add_all(small_graph) == 0

    def test_remove(self, small_graph):
        triple = Triple(EX.user1, EX.hasAge, Literal(28))
        assert small_graph.remove(triple) is True
        assert triple not in small_graph
        assert small_graph.remove(triple) is False

    def test_remove_unknown_term_is_noop(self, small_graph):
        assert small_graph.remove(Triple(EX.nobody, EX.hasAge, Literal(1))) is False

    def test_clear(self, small_graph):
        small_graph.clear()
        assert len(small_graph) == 0
        assert list(small_graph.triples()) == []

    def test_removed_triples_disappear_from_indexes(self, small_graph):
        small_graph.remove(Triple(EX.user1, EX.livesIn, EX.term("Madrid")))
        assert list(small_graph.triples(None, EX.livesIn, None)) == []


class TestMatching:
    def test_full_scan(self, small_graph):
        assert len(list(small_graph.triples())) == len(small_graph)

    def test_spo_lookup(self, small_graph):
        results = list(small_graph.triples(EX.user1, EX.hasAge, None))
        assert results == [Triple(EX.user1, EX.hasAge, Literal(28))]

    def test_pos_lookup(self, small_graph):
        subjects = {t.subject for t in small_graph.triples(None, RDF_TYPE, EX.Blogger)}
        assert subjects == {EX.user1, EX.user2}

    def test_osp_lookup(self, small_graph):
        results = list(small_graph.triples(None, None, EX.user2))
        assert results == [Triple(EX.user1, EX.acquaintedWith, EX.user2)]

    def test_subject_only(self, small_graph):
        assert len(list(small_graph.triples(EX.user1, None, None))) == 4

    def test_unknown_constant_yields_nothing(self, small_graph):
        assert list(small_graph.triples(EX.term("missing"), None, None)) == []
        assert list(small_graph.triples(None, EX.term("missingProp"), None)) == []

    def test_fully_bound_membership(self, small_graph):
        hit = list(small_graph.triples(EX.user1, EX.hasAge, Literal(28)))
        miss = list(small_graph.triples(EX.user1, EX.hasAge, Literal(99)))
        assert len(hit) == 1 and miss == []

    def test_match_pattern_with_repeated_variable(self):
        graph = Graph()
        graph.add(Triple(EX.a, EX.knows, EX.a))
        graph.add(Triple(EX.a, EX.knows, EX.b))
        pattern = TriplePattern(Variable("x"), EX.knows, Variable("x"))
        assert list(graph.match_pattern(pattern)) == [Triple(EX.a, EX.knows, EX.a)]

    def test_count_ids_matches_enumeration(self, small_graph):
        cases = [
            (None, None, None),
            (small_graph.encode_term(EX.user1), None, None),
            (None, small_graph.encode_term(EX.hasAge), None),
            (None, None, small_graph.encode_term(EX.user2)),
            (None, small_graph.encode_term(RDF_TYPE), small_graph.encode_term(EX.Blogger)),
            (small_graph.encode_term(EX.user1), small_graph.encode_term(EX.hasAge), None),
        ]
        for s, p, o in cases:
            assert small_graph.count_ids(s, p, o) == len(list(small_graph.match_ids(s, p, o)))

    def test_count_ids_with_unknown_sentinel(self, small_graph):
        assert small_graph.count_ids(-1, None, None) == 0


class TestNavigation:
    def test_subjects_predicates_objects(self, small_graph):
        assert set(small_graph.subjects(RDF_TYPE, EX.Blogger)) == {EX.user1, EX.user2}
        assert EX.hasAge in set(small_graph.predicates(EX.user1))
        assert set(small_graph.objects(EX.user1, EX.livesIn)) == {EX.term("Madrid")}

    def test_value(self, small_graph):
        assert small_graph.value(EX.user1, EX.hasAge) == Literal(28)
        assert small_graph.value(EX.user1, EX.wrotePost) is None

    def test_instances_of(self, small_graph):
        assert set(small_graph.instances_of(EX.Blogger)) == {EX.user1, EX.user2}


class TestSetOperations:
    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        clone.add(Triple(EX.user3, RDF_TYPE, EX.Blogger))
        assert len(clone) == len(small_graph) + 1

    def test_union(self, small_graph):
        other = Graph()
        other.add(Triple(EX.user3, RDF_TYPE, EX.Blogger))
        union = small_graph.union(other)
        assert len(union) == len(small_graph) + 1
        assert Triple(EX.user3, RDF_TYPE, EX.Blogger) in union

    def test_equality_by_triple_set(self, small_graph):
        clone = small_graph.copy()
        assert clone == small_graph
        clone.remove(Triple(EX.user1, EX.hasAge, Literal(28)))
        assert clone != small_graph

    def test_graphs_are_unhashable(self, small_graph):
        with pytest.raises(TypeError):
            hash(small_graph)

    def test_bool(self):
        assert not Graph()
        graph = Graph([Triple(EX.a, EX.p, EX.b)])
        assert graph


class TestDictionaryIntegration:
    def test_encode_decode_roundtrip(self, small_graph):
        term_id = small_graph.encode_term(EX.user1)
        assert term_id is not None
        assert small_graph.decode_id(term_id) == EX.user1

    def test_unknown_term_encodes_to_none(self, small_graph):
        assert small_graph.encode_term(EX.term("missing")) is None


class TestUnhashability:
    def test_hash_attribute_is_none(self):
        """Explicitly unhashable: __hash__ is None, like other mutable containers."""
        assert Graph.__hash__ is None

    def test_not_an_instance_of_hashable(self, small_graph):
        from collections.abc import Hashable

        assert not isinstance(small_graph, Hashable)

    def test_cannot_be_used_in_sets_or_dict_keys(self, small_graph):
        with pytest.raises(TypeError):
            {small_graph}
        with pytest.raises(TypeError):
            {small_graph: 1}


class TestChangeCounter:
    def test_fresh_graph_version(self):
        graph = Graph()
        assert graph.version == 0
        graph.add(Triple(EX.a, EX.p, EX.b))
        assert graph.version == 1

    def test_duplicate_add_does_not_bump(self, small_graph):
        version = small_graph.version
        duplicate = next(iter(small_graph))
        assert not small_graph.add(duplicate)
        assert small_graph.version == version

    def test_remove_bumps_only_when_present(self, small_graph):
        version = small_graph.version
        triple = next(iter(small_graph))
        assert small_graph.remove(triple)
        assert small_graph.version == version + 1
        assert not small_graph.remove(triple)
        assert small_graph.version == version + 1

    def test_clear_bumps_once_when_non_empty(self, small_graph):
        version = small_graph.version
        small_graph.clear()
        assert small_graph.version == version + 1
        small_graph.clear()  # already empty: no change
        assert small_graph.version == version + 1


class TestChangeLog:
    """The bounded triple-delta log feeding incremental cube maintenance."""

    def test_empty_delta_at_current_version(self, small_graph):
        delta = small_graph.deltas_since(small_graph.version)
        assert delta is not None and delta.is_empty()
        assert len(delta) == 0

    def test_add_and_remove_are_reported(self, small_graph):
        version = small_graph.version
        added = Triple(EX.user3, RDF_TYPE, EX.Blogger)
        removed = Triple(EX.user1, EX.hasAge, Literal(28))
        small_graph.add(added)
        small_graph.remove(removed)
        delta = small_graph.deltas_since(version)
        assert delta is not None
        assert delta.added == (_encoded(small_graph, added),)
        assert delta.removed == (_encoded(small_graph, removed),)
        assert len(delta) == 2
        assert (delta.from_version, delta.to_version) == (version, small_graph.version)

    def test_add_then_remove_coalesces_to_nothing(self, small_graph):
        version = small_graph.version
        triple = Triple(EX.user3, RDF_TYPE, EX.Blogger)
        small_graph.add(triple)
        small_graph.remove(triple)
        delta = small_graph.deltas_since(version)
        assert delta is not None and delta.is_empty()

    def test_remove_then_readd_coalesces_to_nothing(self, small_graph):
        version = small_graph.version
        triple = Triple(EX.user1, EX.hasAge, Literal(28))
        small_graph.remove(triple)
        small_graph.add(triple)
        delta = small_graph.deltas_since(version)
        assert delta is not None and delta.is_empty()

    def test_noop_mutations_do_not_log(self, small_graph):
        length = small_graph.change_log_length
        small_graph.add(next(iter(small_graph)))  # duplicate
        small_graph.remove(Triple(EX.nobody, EX.hasAge, Literal(1)))  # absent
        assert small_graph.change_log_length == length

    def test_clear_degrades_to_full_invalidation(self, small_graph):
        version = small_graph.version
        small_graph.clear()
        assert small_graph.deltas_since(version) is None
        assert small_graph.change_log_length == 0
        # Post-clear mutations are trackable again.
        base = small_graph.version
        small_graph.add(Triple(EX.a, EX.p, EX.b))
        delta = small_graph.deltas_since(base)
        assert delta is not None and len(delta.added) == 1

    def test_overflow_degrades_to_full_invalidation(self):
        graph = Graph(change_log_limit=4)
        stamps = []
        for index in range(8):
            stamps.append(graph.version)
            graph.add(Triple(EX.term(f"s{index}"), EX.p, EX.o))
        # Versions from before the overflow window: not answerable.
        assert graph.deltas_since(stamps[0]) is None
        # The base moved forward to the overflow point; deltas since then work.
        base = graph.change_log_base
        assert base > 0
        delta = graph.deltas_since(base)
        assert delta is not None
        assert len(delta.added) == graph.version - base

    def test_overflow_evicts_one_record_not_the_window(self):
        """Regression: overflow is a ring buffer, not a wholesale drop.

        The old ``_log_change`` truncated the *entire* retained history on
        every overflow, so a consumer even one version behind lost delta
        coverage the moment a sustained stream crossed the limit.  Eviction
        must drop only the oldest record: after N > limit adds, exactly the
        newest ``limit`` records survive and every version in that window
        stays answerable.
        """
        limit = 4
        graph = Graph(change_log_limit=limit)
        for index in range(limit + 1):  # one past the limit: first overflow
            graph.add(Triple(EX.term(f"s{index}"), EX.p, EX.o))
        assert graph.change_log_length == limit
        # The old behavior left base == version (empty log) here; the ring
        # buffer retains versions (1, limit+1] and answers all of them.
        assert graph.change_log_base == graph.version - limit
        for behind in range(1, limit + 1):
            delta = graph.deltas_since(graph.version - behind)
            assert delta is not None
            assert len(delta.added) == behind

    def test_sustained_stream_never_starves_a_trailing_consumer(self):
        """A consumer refreshing every batch stays within the window forever."""
        limit = 8
        batch = 3  # < limit: the consumer never falls out of the window
        graph = Graph(change_log_limit=limit)
        seen = graph.version
        for round_index in range(20):  # 60 mutations, far past the limit
            for index in range(batch):
                graph.add(Triple(EX.term(f"r{round_index}/{index}"), EX.p, EX.o))
            delta = graph.deltas_since(seen)
            assert delta is not None, f"starved at round {round_index}"
            assert len(delta.added) == batch
            seen = graph.version

    def test_future_version_is_unanswerable(self, small_graph):
        assert small_graph.deltas_since(small_graph.version + 1) is None

    def test_zero_limit_disables_the_log(self):
        graph = Graph(change_log_limit=0)
        version = graph.version
        graph.add(Triple(EX.a, EX.p, EX.b))
        assert graph.deltas_since(version) is None
        assert graph.deltas_since(graph.version) is not None  # empty delta

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Graph(change_log_limit=-1)

    def test_version_stamping_consistent_with_log(self, small_graph):
        """Every logged record carries the version its mutation produced."""
        version = small_graph.version
        first = Triple(EX.x1, EX.p, EX.o)
        second = Triple(EX.x2, EX.p, EX.o)
        small_graph.add(first)
        mid_version = small_graph.version
        small_graph.add(second)
        assert mid_version == version + 1
        assert small_graph.version == version + 2
        delta_mid = small_graph.deltas_since(mid_version)
        assert delta_mid.added == (_encoded(small_graph, second),)
        delta_all = small_graph.deltas_since(version)
        assert set(delta_all.added) == {
            _encoded(small_graph, first),
            _encoded(small_graph, second),
        }


class TestPartitionAndPickling:
    """Fact-id-range shards and process-boundary transport of graphs."""

    def _graph(self) -> Graph:
        graph = Graph(name="shardable")
        for index in range(10):
            graph.add(Triple(EX.term(f"s{index}"), EX.p, Literal(index)))
        return graph

    def test_partition_is_disjoint_and_exhaustive(self):
        graph = self._graph()
        shards = graph.partition(4)
        size = len(graph.dictionary)
        for term_id in range(size + 3):  # +3: ids assigned after partitioning
            assert sum(1 for shard in shards if shard.contains(term_id)) == 1

    def test_partition_shards_are_picklable_specs(self):
        import pickle

        graph = self._graph()
        for shard in graph.partition(3):
            clone = pickle.loads(pickle.dumps(shard))
            assert clone == shard

    def test_graph_survives_a_pickle_roundtrip(self):
        # The parallel executor ships the instance to process-pool workers;
        # ids must be preserved so shard results merge without re-encoding.
        import pickle

        graph = self._graph()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        for term, term_id in graph.dictionary.items():
            assert clone.dictionary.lookup(term) == term_id

    def test_partition_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            self._graph().partition(0)
        with pytest.raises(ValueError):
            self._graph().partition(-2)
