"""Unit tests for the N-Triples parser and serializer."""

import pytest

from repro.errors import ParseError
from repro.rdf import EX, Graph, IRI, Literal, Triple
from repro.rdf.ntriples import (
    dump_ntriples,
    load_ntriples,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
)
from repro.rdf.terms import BlankNode


class TestParseLine:
    def test_simple_iri_triple(self):
        triple = parse_ntriples_line(
            "<http://example.org/user1> <http://example.org/livesIn> <http://example.org/Madrid> ."
        )
        assert triple == Triple(EX.user1, EX.livesIn, EX.term("Madrid"))

    def test_plain_literal(self):
        triple = parse_ntriples_line('<http://a.example/s> <http://a.example/p> "hello" .')
        assert triple.object == Literal("hello")

    def test_typed_literal(self):
        triple = parse_ntriples_line(
            '<http://a.example/s> <http://a.example/p> "28"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert triple.object == Literal(28)

    def test_language_literal(self):
        triple = parse_ntriples_line('<http://a.example/s> <http://a.example/p> "bonjour"@fr .')
        assert triple.object == Literal("bonjour", language="fr")

    def test_blank_nodes(self):
        triple = parse_ntriples_line("_:b1 <http://a.example/p> _:b2 .")
        assert triple.subject == BlankNode("b1")
        assert triple.object == BlankNode("b2")

    def test_escaped_characters_in_literal(self):
        triple = parse_ntriples_line('<http://a.example/s> <http://a.example/p> "line\\nbreak \\"q\\"" .')
        assert triple.object.lexical == 'line\nbreak "q"'

    def test_unicode_escape(self):
        triple = parse_ntriples_line('<http://a.example/s> <http://a.example/p> "caf\\u00E9" .')
        assert triple.object.lexical == "café"

    def test_comment_and_blank_lines_return_none(self):
        assert parse_ntriples_line("") is None
        assert parse_ntriples_line("   ") is None
        assert parse_ntriples_line("# a comment") is None

    def test_trailing_comment_allowed(self):
        triple = parse_ntriples_line("<http://a.example/s> <http://a.example/p> <http://a.example/o> . # note")
        assert triple is not None

    def test_missing_dot_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<http://a.example/s> <http://a.example/p> <http://a.example/o>")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("this is not n-triples .")

    def test_literal_subject_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line('"x" <http://a.example/p> <http://a.example/o> .')


class TestDocumentRoundtrip:
    def test_parse_document_string(self):
        text = "\n".join(
            [
                "# bloggers",
                "<http://example.org/user1> <http://example.org/hasAge> \"28\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
                "<http://example.org/user1> <http://example.org/livesIn> <http://example.org/Madrid> .",
                "",
            ]
        )
        graph = parse_ntriples(text)
        assert len(graph) == 2
        assert Triple(EX.user1, EX.hasAge, Literal(28)) in graph

    def test_serialize_is_sorted_and_parseable(self):
        graph = Graph()
        graph.add(Triple(EX.user2, EX.hasAge, Literal(35)))
        graph.add(Triple(EX.user1, EX.hasAge, Literal(28)))
        text = serialize_ntriples(graph)
        lines = [line for line in text.splitlines() if line]
        assert lines == sorted(lines)
        assert parse_ntriples(text) == graph

    def test_roundtrip_preserves_term_kinds(self):
        graph = Graph()
        graph.add(Triple(EX.s, EX.p, Literal("plain")))
        graph.add(Triple(EX.s, EX.p, Literal("tagged", language="en")))
        graph.add(Triple(EX.s, EX.p, Literal(3.5)))
        graph.add(Triple(BlankNode("b0"), EX.p, EX.o))
        assert parse_ntriples(serialize_ntriples(graph)) == graph

    def test_empty_graph_serializes_to_empty_string(self):
        assert serialize_ntriples(Graph()) == ""

    def test_file_roundtrip(self, tmp_path):
        graph = Graph()
        graph.add(Triple(EX.user1, EX.livesIn, EX.term("Madrid")))
        path = str(tmp_path / "data.nt")
        dump_ntriples(graph, path)
        assert load_ntriples(path) == graph

    def test_parse_into_existing_graph(self):
        graph = Graph()
        graph.add(Triple(EX.user1, EX.hasAge, Literal(28)))
        parse_ntriples("<http://example.org/user2> <http://example.org/hasAge> \"35\"^^<http://www.w3.org/2001/XMLSchema#integer> .", graph)
        assert len(graph) == 2

    def test_parse_error_reports_line_number(self):
        text = "<http://a.example/s> <http://a.example/p> <http://a.example/o> .\nbroken line ."
        with pytest.raises(ParseError) as excinfo:
            parse_ntriples(text)
        assert excinfo.value.line == 2


class TestMalformedInputs:
    """Error paths: every rejection names the problem and the line."""

    def test_unclosed_iri_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<http://a.example/s <http://a.example/p> <http://a.example/o> .")

    def test_missing_object_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<http://a.example/s> <http://a.example/p> .")

    def test_blank_node_predicate_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<http://a.example/s> _:b1 <http://a.example/o> .")

    def test_literal_predicate_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line('<http://a.example/s> "p" <http://a.example/o> .')

    def test_trailing_garbage_after_dot_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<http://a.example/s> <http://a.example/p> <http://a.example/o> . junk")

    def test_error_carries_line_number_from_document(self):
        text = "\n".join(
            [
                "# fine",
                "<http://a.example/s> <http://a.example/p> <http://a.example/o> .",
                "<http://a.example/s> <http://a.example/p> broken .",
            ]
        )
        with pytest.raises(ParseError) as excinfo:
            parse_ntriples(text)
        assert excinfo.value.line == 3


class TestRoundtripAtScale:
    def test_generated_instance_roundtrips(self):
        # The full literal/IRI space of a generated dataset survives
        # serialize -> parse: this is the path every benchmark instance
        # would take through disk.
        from repro.datagen import BloggerConfig, blogger_dataset

        instance = blogger_dataset(BloggerConfig(bloggers=25, seed=11)).instance
        assert parse_ntriples(serialize_ntriples(instance)) == instance

    def test_big_unicode_escape(self):
        triple = parse_ntriples_line(
            '<http://a.example/s> <http://a.example/p> "\\U0001F600" .'
        )
        assert triple.object.lexical == "\U0001F600"

    def test_iter_ntriples_streams_without_a_graph(self):
        from repro.rdf.ntriples import iter_ntriples

        lines = [
            "# header",
            "<http://example.org/user1> <http://example.org/livesIn> <http://example.org/Madrid> .",
            "",
            "<http://example.org/user2> <http://example.org/livesIn> <http://example.org/NY> .",
        ]
        triples = list(iter_ntriples(lines))
        assert len(triples) == 2
        assert triples[0].subject == EX.user1
