"""Unit tests for graph statistics and cardinality estimation."""

import pytest

from repro.rdf import EX, Graph, Literal, RDF, Triple
from repro.rdf.statistics import GraphStatistics
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern

RDF_TYPE = RDF.term("type")


@pytest.fixture()
def stats_graph() -> Graph:
    graph = Graph()
    for index in range(10):
        user = EX.term(f"user{index}")
        graph.add(Triple(user, RDF_TYPE, EX.Blogger))
        graph.add(Triple(user, EX.hasAge, Literal(20 + index % 5)))
    for index in range(3):
        site = EX.term(f"site{index}")
        graph.add(Triple(site, RDF_TYPE, EX.Site))
    return graph


class TestCounts:
    def test_triple_and_predicate_counts(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        assert statistics.triple_count == len(stats_graph)
        assert statistics.predicate_cardinality(EX.hasAge) == 10
        assert statistics.predicate_cardinality(RDF_TYPE) == 13
        assert statistics.predicate_cardinality(EX.unknown) == 0

    def test_class_counts(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        assert statistics.class_cardinality(EX.Blogger) == 10
        assert statistics.class_cardinality(EX.Site) == 3
        assert statistics.class_cardinality(EX.Nothing) == 0

    def test_distinct_subject_object_counts(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        assert statistics.predicate_distinct_subjects[EX.hasAge] == 10
        assert statistics.predicate_distinct_objects[EX.hasAge] == 5

    def test_reads_auto_refresh_after_mutations(self, stats_graph):
        # Regression: statistics used to serve the counts captured at
        # construction until someone remembered to call refresh(), feeding
        # the planner estimates for a graph that no longer existed.
        statistics = GraphStatistics(stats_graph)
        assert statistics.predicate_cardinality(EX.hasAge) == 10
        stats_graph.add(Triple(EX.term("user99"), EX.hasAge, Literal(99)))
        assert statistics.predicate_cardinality(EX.hasAge) == 11
        stats_graph.add(Triple(EX.term("user99"), RDF_TYPE, EX.Site))
        assert statistics.class_cardinality(EX.Site) == 4

    def test_manual_refresh_still_works(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        stats_graph.add(Triple(EX.term("user99"), EX.hasAge, Literal(99)))
        statistics.refresh()
        assert statistics.predicate_cardinality(EX.hasAge) == 11


class TestEstimates:
    def test_predicate_only_pattern(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        pattern = TriplePattern(Variable("x"), EX.hasAge, Variable("a"))
        assert statistics.estimate_pattern(pattern) == 10

    def test_type_pattern_uses_class_counts(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        pattern = TriplePattern(Variable("x"), RDF_TYPE, EX.Site)
        assert statistics.estimate_pattern(pattern) == 3

    def test_bound_object_divides_by_distinct_objects(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        pattern = TriplePattern(Variable("x"), EX.hasAge, Literal(21))
        assert statistics.estimate_pattern(pattern) == pytest.approx(2.0)

    def test_bound_subject_estimate(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        pattern = TriplePattern(EX.term("user0"), EX.hasAge, Variable("a"))
        assert statistics.estimate_pattern(pattern) >= 1.0

    def test_fully_bound_pattern_is_exact(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        hit = TriplePattern(EX.term("user0"), EX.hasAge, Literal(20))
        miss = TriplePattern(EX.term("user0"), EX.hasAge, Literal(99))
        assert statistics.estimate_pattern(hit) == 1.0
        assert statistics.estimate_pattern(miss) == 0.0

    def test_unknown_predicate_estimates_zero(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        pattern = TriplePattern(Variable("x"), EX.unknown, Variable("y"))
        assert statistics.estimate_pattern(pattern) == 0.0

    def test_all_variable_pattern_estimates_graph_size(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        pattern = TriplePattern(Variable("s"), Variable("p"), Variable("o"))
        assert statistics.estimate_pattern(pattern) == len(stats_graph)

    def test_variable_predicate_with_bound_subject(self, stats_graph):
        statistics = GraphStatistics(stats_graph)
        pattern = TriplePattern(EX.term("user0"), Variable("p"), Variable("o"))
        assert statistics.estimate_pattern(pattern) == 2.0


class TestBGPEstimates:
    @pytest.fixture()
    def query_graph(self):
        graph = Graph()
        rdf_type = RDF.term("type")
        for index in range(20):
            user = EX.term(f"user{index}")
            graph.add(Triple(user, rdf_type, EX.Blogger))
            graph.add(Triple(user, EX.hasAge, Literal(20 + index % 5)))
            if index < 5:
                graph.add(Triple(user, EX.livesIn, EX.term("Madrid")))
        return graph

    def _query(self, *patterns):
        from repro.bgp.query import BGPQuery

        return BGPQuery([Variable("x")], list(patterns))

    def test_cardinality_bounded_by_most_selective_pattern(self, query_graph):
        statistics = GraphStatistics(query_graph)
        x = Variable("x")
        query = self._query(
            TriplePattern(x, RDF.term("type"), EX.Blogger),
            TriplePattern(x, EX.livesIn, EX.term("Madrid")),
        )
        estimate = statistics.estimate_bgp_cardinality(query)
        assert 1.0 <= estimate <= 5.0

    def test_extra_patterns_never_raise_the_estimate(self, query_graph):
        statistics = GraphStatistics(query_graph)
        x = Variable("x")
        single = self._query(TriplePattern(x, RDF.term("type"), EX.Blogger))
        joined = self._query(
            TriplePattern(x, RDF.term("type"), EX.Blogger),
            TriplePattern(x, EX.hasAge, Variable("a")),
        )
        assert statistics.estimate_bgp_cardinality(joined) <= statistics.estimate_bgp_cardinality(
            single
        )

    def test_bgp_cardinality_sees_mutations_without_manual_refresh(self, query_graph):
        statistics = GraphStatistics(query_graph)
        x = Variable("x")
        query = self._query(TriplePattern(x, EX.livesIn, EX.term("Madrid")))
        before = statistics.estimate_bgp_cardinality(query)
        for index in range(20, 40):
            query_graph.add(
                Triple(EX.term(f"user{index}"), EX.livesIn, EX.term("Madrid"))
            )
        after = statistics.estimate_bgp_cardinality(query)
        assert after > before
        assert after == pytest.approx(25.0)

    def test_unmatchable_pattern_zeroes_the_estimate(self, query_graph):
        statistics = GraphStatistics(query_graph)
        x = Variable("x")
        query = self._query(
            TriplePattern(x, RDF.term("type"), EX.Blogger),
            TriplePattern(x, EX.unknownPredicate, Variable("y")),
        )
        assert statistics.estimate_bgp_cardinality(query) == 0.0

    def test_evaluation_cost_at_least_scan_cost(self, query_graph):
        statistics = GraphStatistics(query_graph)
        x = Variable("x")
        query = self._query(
            TriplePattern(x, RDF.term("type"), EX.Blogger),
            TriplePattern(x, EX.hasAge, Variable("a")),
        )
        scan = sum(statistics.estimate_pattern(pattern) for pattern in query.body)
        assert statistics.estimate_evaluation_cost(query) >= scan
