"""Unit tests for the term dictionary (integer encoding)."""

import pytest

from repro.errors import DictionaryError
from repro.rdf import EX, Literal
from repro.rdf.dictionary import TermDictionary


class TestTermDictionary:
    def test_encode_assigns_dense_ids_in_first_seen_order(self):
        dictionary = TermDictionary()
        first = dictionary.encode(EX.user1)
        second = dictionary.encode(EX.user2)
        assert (first, second) == (0, 1)
        assert len(dictionary) == 2

    def test_encode_is_idempotent(self):
        dictionary = TermDictionary()
        assert dictionary.encode(EX.user1) == dictionary.encode(EX.user1)
        assert len(dictionary) == 1

    def test_decode_roundtrip(self):
        dictionary = TermDictionary()
        terms = [EX.user1, Literal(28), Literal("Bill"), EX.hasAge]
        ids = [dictionary.encode(term) for term in terms]
        assert [dictionary.decode(i) for i in ids] == terms
        assert dictionary.decode_many(tuple(ids)) == tuple(terms)

    def test_lookup_returns_none_for_unknown(self):
        dictionary = TermDictionary()
        assert dictionary.lookup(EX.user1) is None
        dictionary.encode(EX.user1)
        assert dictionary.lookup(EX.user1) == 0

    def test_encode_existing_raises_for_unknown(self):
        dictionary = TermDictionary()
        with pytest.raises(DictionaryError):
            dictionary.encode_existing(EX.user1)

    def test_decode_unknown_id_raises(self):
        dictionary = TermDictionary()
        with pytest.raises(DictionaryError):
            dictionary.decode(0)
        with pytest.raises(DictionaryError):
            dictionary.decode(-1)

    def test_decode_many_unknown_raises(self):
        dictionary = TermDictionary()
        dictionary.encode(EX.user1)
        with pytest.raises(DictionaryError):
            dictionary.decode_many((0, 5))

    def test_contains(self):
        dictionary = TermDictionary()
        dictionary.encode(EX.user1)
        assert EX.user1 in dictionary
        assert EX.user2 not in dictionary

    def test_distinct_terms_get_distinct_ids(self):
        dictionary = TermDictionary()
        # A literal "28" and an IRI ending in 28 must not collide.
        id_literal = dictionary.encode(Literal(28))
        id_string = dictionary.encode(Literal("28"))
        id_iri = dictionary.encode(EX.term("28"))
        assert len({id_literal, id_string, id_iri}) == 3

    def test_copy_is_independent(self):
        dictionary = TermDictionary()
        dictionary.encode(EX.user1)
        clone = dictionary.copy()
        clone.encode(EX.user2)
        assert len(dictionary) == 1
        assert len(clone) == 2

    def test_items_and_terms_iteration(self):
        dictionary = TermDictionary()
        dictionary.encode(EX.user1)
        dictionary.encode(EX.user2)
        assert dict(dictionary.items()) == {EX.user1: 0, EX.user2: 1}
        assert list(dictionary.terms()) == [EX.user1, EX.user2]
