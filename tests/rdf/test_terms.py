"""Unit tests for RDF terms (IRI, Literal, BlankNode, Variable)."""

from decimal import Decimal

import pytest

from repro.errors import InvalidTermError
from repro.rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    fresh_blank_node,
)


class TestIRI:
    def test_value_and_n3(self):
        iri = IRI("http://example.org/user1")
        assert iri.value == "http://example.org/user1"
        assert iri.n3() == "<http://example.org/user1>"

    def test_equality_and_hash(self):
        assert IRI("http://a.example/x") == IRI("http://a.example/x")
        assert IRI("http://a.example/x") != IRI("http://a.example/y")
        assert hash(IRI("http://a.example/x")) == hash(IRI("http://a.example/x"))

    def test_iri_is_not_equal_to_its_string(self):
        assert IRI("http://a.example/x") != "http://a.example/x"

    def test_local_name_variants(self):
        assert IRI("http://example.org/ns#Blogger").local_name() == "Blogger"
        assert IRI("http://example.org/users/user1").local_name() == "user1"
        assert IRI("urn:uuid:abc").local_name() == "abc"

    def test_rejects_empty_and_bad_characters(self):
        with pytest.raises(InvalidTermError):
            IRI("")
        with pytest.raises(InvalidTermError):
            IRI("http://example.org/has space")
        with pytest.raises(InvalidTermError):
            IRI("http://example.org/<bad>")

    def test_rejects_non_string(self):
        with pytest.raises(InvalidTermError):
            IRI(42)  # type: ignore[arg-type]

    def test_immutable(self):
        iri = IRI("http://example.org/x")
        with pytest.raises(AttributeError):
            iri.value = "other"  # type: ignore[misc]

    def test_ordering(self):
        assert IRI("http://a.example/a") < IRI("http://a.example/b")

    def test_kind_flags(self):
        iri = IRI("http://example.org/x")
        assert iri.is_iri and not iri.is_literal and not iri.is_blank and not iri.is_variable


class TestLiteral:
    def test_plain_string_literal(self):
        literal = Literal("hello")
        assert literal.lexical == "hello"
        assert literal.datatype == XSD_STRING
        assert literal.language is None
        assert literal.n3() == '"hello"'

    def test_integer_inference_and_conversion(self):
        literal = Literal(42)
        assert literal.datatype == XSD_INTEGER
        assert literal.to_python() == 42
        assert literal.is_numeric

    def test_float_and_decimal_and_bool(self):
        assert Literal(2.5).datatype == XSD_DOUBLE
        assert Literal(2.5).to_python() == pytest.approx(2.5)
        assert Literal(Decimal("3.14")).datatype == XSD_DECIMAL
        assert Literal(Decimal("3.14")).to_python() == Decimal("3.14")
        assert Literal(True).datatype == XSD_BOOLEAN
        assert Literal(True).to_python() is True
        assert Literal(False).to_python() is False

    def test_language_tagged(self):
        literal = Literal("bonjour", language="FR")
        assert literal.language == "fr"
        assert literal.n3() == '"bonjour"@fr'

    def test_language_and_datatype_mutually_exclusive(self):
        with pytest.raises(InvalidTermError):
            Literal("x", datatype=XSD_STRING, language="en")

    def test_invalid_language_tag(self):
        with pytest.raises(InvalidTermError):
            Literal("x", language="not a tag!")

    def test_explicit_datatype_as_iri(self):
        literal = Literal("7", datatype=IRI(XSD_INTEGER))
        assert literal.datatype == XSD_INTEGER
        assert literal.to_python() == 7

    def test_malformed_numeric_falls_back_to_string(self):
        literal = Literal("not-a-number", datatype=XSD_INTEGER)
        assert literal.to_python() == "not-a-number"

    def test_escaping_in_n3(self):
        literal = Literal('say "hi"\nplease')
        assert literal.n3() == '"say \\"hi\\"\\nplease"'

    def test_equality_considers_datatype(self):
        assert Literal("28", datatype=XSD_INTEGER) != Literal("28")
        assert Literal("28", datatype=XSD_INTEGER) == Literal(28)

    def test_numeric_ordering(self):
        assert Literal(9) < Literal(10)
        assert Literal(2.5) < Literal(3)

    def test_rejects_unsupported_python_type(self):
        with pytest.raises(InvalidTermError):
            Literal([1, 2, 3])  # type: ignore[arg-type]

    def test_immutable(self):
        literal = Literal("x")
        with pytest.raises(AttributeError):
            literal.lexical = "y"  # type: ignore[misc]


class TestBlankNode:
    def test_label_and_n3(self):
        node = BlankNode("b1")
        assert node.label == "b1"
        assert node.n3() == "_:b1"

    def test_equality(self):
        assert BlankNode("b1") == BlankNode("b1")
        assert BlankNode("b1") != BlankNode("b2")

    def test_invalid_labels(self):
        with pytest.raises(InvalidTermError):
            BlankNode("")
        with pytest.raises(InvalidTermError):
            BlankNode("has space")

    def test_fresh_blank_nodes_are_distinct(self):
        first = fresh_blank_node()
        second = fresh_blank_node()
        assert first != second
        assert first.label != second.label


class TestVariable:
    def test_name_and_n3(self):
        variable = Variable("dage")
        assert variable.name == "dage"
        assert variable.n3() == "?dage"

    def test_question_mark_prefix_is_stripped(self):
        assert Variable("?x") == Variable("x")
        assert Variable("$x") == Variable("x")

    def test_copy_constructor(self):
        assert Variable(Variable("x")) == Variable("x")

    def test_invalid_names(self):
        with pytest.raises(InvalidTermError):
            Variable("")
        with pytest.raises(InvalidTermError):
            Variable("1x")
        with pytest.raises(InvalidTermError):
            Variable("a-b")

    def test_variable_is_not_an_iri(self):
        variable = Variable("x")
        assert variable.is_variable and not variable.is_iri

    def test_distinct_from_equally_named_literal(self):
        assert Variable("x") != Literal("x")
