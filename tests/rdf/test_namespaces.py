"""Unit tests for namespaces and prefix maps."""

import pytest

from repro.errors import InvalidTermError
from repro.rdf import IRI, Namespace, PrefixMap, RDF, RDFS, XSD


class TestNamespace:
    def test_attribute_and_item_access(self):
        ns = Namespace("http://example.org/")
        assert ns.Blogger == IRI("http://example.org/Blogger")
        assert ns["hasAge"] == IRI("http://example.org/hasAge")
        assert ns.term("livesIn") == IRI("http://example.org/livesIn")

    def test_containment_and_local_part(self):
        ns = Namespace("http://example.org/")
        iri = ns.term("user/user1")
        assert iri in ns
        assert ns.local_part(iri) == "user/user1"
        assert IRI("http://other.example/x") not in ns

    def test_local_part_outside_namespace_raises(self):
        ns = Namespace("http://example.org/")
        with pytest.raises(InvalidTermError):
            ns.local_part(IRI("http://other.example/x"))

    def test_equality(self):
        assert Namespace("http://a.example/") == Namespace("http://a.example/")
        assert Namespace("http://a.example/") != Namespace("http://b.example/")

    def test_empty_base_rejected(self):
        with pytest.raises(InvalidTermError):
            Namespace("")

    def test_well_known_vocabularies(self):
        assert RDF.term("type").value.endswith("#type")
        assert RDFS.term("subClassOf").value.endswith("#subClassOf")
        assert XSD.term("integer").value.endswith("#integer")


class TestPrefixMap:
    def test_defaults_bound(self):
        prefixes = PrefixMap()
        assert "rdf" in prefixes
        assert prefixes.expand("rdf:type") == RDF.term("type")
        assert prefixes.expand("xsd:integer") == XSD.term("integer")

    def test_bind_and_expand(self):
        prefixes = PrefixMap()
        prefixes.bind("ex", "http://example.org/")
        assert prefixes.expand("ex:Blogger") == IRI("http://example.org/Blogger")

    def test_expand_unknown_prefix_raises(self):
        prefixes = PrefixMap()
        with pytest.raises(InvalidTermError):
            prefixes.expand("nope:thing")

    def test_expand_requires_colon(self):
        prefixes = PrefixMap()
        with pytest.raises(InvalidTermError):
            prefixes.expand("justaname")

    def test_shrink_prefers_longest_namespace(self):
        prefixes = PrefixMap(bind_defaults=False)
        prefixes.bind("ex", "http://example.org/")
        prefixes.bind("user", "http://example.org/user/")
        assert prefixes.shrink(IRI("http://example.org/user/u1")) == "user:u1"
        assert prefixes.shrink(IRI("http://example.org/Blogger")) == "ex:Blogger"
        assert prefixes.shrink(IRI("http://unbound.example/x")) is None

    def test_copy_is_independent(self):
        prefixes = PrefixMap()
        clone = prefixes.copy()
        clone.bind("ex", "http://example.org/")
        assert "ex" in clone
        assert "ex" not in prefixes

    def test_iteration_and_len(self):
        prefixes = PrefixMap(bind_defaults=False)
        prefixes.bind("a", "http://a.example/")
        prefixes.bind("b", "http://b.example/")
        assert len(prefixes) == 2
        assert {prefix for prefix, _ in prefixes} == {"a", "b"}
