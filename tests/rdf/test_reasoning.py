"""Unit tests for RDFS saturation."""

import pytest

from repro.rdf import EX, Graph, Literal, RDF, RDFS, Triple
from repro.rdf.reasoning import RDFSRules, is_schema_triple, saturate, schema_triples

RDF_TYPE = RDF.term("type")
SUBCLASS = RDFS.term("subClassOf")
SUBPROPERTY = RDFS.term("subPropertyOf")
DOMAIN = RDFS.term("domain")
RANGE = RDFS.term("range")


@pytest.fixture()
def schema_graph() -> Graph:
    graph = Graph()
    graph.add(Triple(EX.Blogger, SUBCLASS, EX.Person))
    graph.add(Triple(EX.Person, SUBCLASS, EX.Agent))
    graph.add(Triple(EX.wrotePost, SUBPROPERTY, EX.authored))
    graph.add(Triple(EX.wrotePost, DOMAIN, EX.Blogger))
    graph.add(Triple(EX.wrotePost, RANGE, EX.BlogPost))
    return graph


class TestRules:
    def test_schema_triple_detection(self, schema_graph):
        assert all(is_schema_triple(t) for t in schema_graph)
        assert not is_schema_triple(Triple(EX.user1, RDF_TYPE, EX.Blogger))
        assert len(list(schema_triples(schema_graph))) == len(schema_graph)

    def test_transitive_superclasses(self, schema_graph):
        rules = RDFSRules(schema_graph)
        assert rules.superclasses(EX.Blogger) == {EX.Person, EX.Agent}
        assert rules.superclasses(EX.Agent) == set()

    def test_superproperties_domains_ranges(self, schema_graph):
        rules = RDFSRules(schema_graph)
        assert rules.superproperties(EX.wrotePost) == {EX.authored}
        assert rules.domains(EX.wrotePost) == {EX.Blogger}
        assert rules.ranges(EX.wrotePost) == {EX.BlogPost}

    def test_entail_subproperty_and_typing(self, schema_graph):
        rules = RDFSRules(schema_graph)
        entailed = rules.entail(Triple(EX.user1, EX.wrotePost, EX.post1))
        assert Triple(EX.user1, EX.authored, EX.post1) in entailed
        assert Triple(EX.user1, RDF_TYPE, EX.Blogger) in entailed
        assert Triple(EX.post1, RDF_TYPE, EX.BlogPost) in entailed

    def test_entail_subclass_typing(self, schema_graph):
        rules = RDFSRules(schema_graph)
        entailed = rules.entail(Triple(EX.user1, RDF_TYPE, EX.Blogger))
        assert Triple(EX.user1, RDF_TYPE, EX.Person) in entailed
        assert Triple(EX.user1, RDF_TYPE, EX.Agent) in entailed

    def test_range_not_applied_to_literal_objects(self):
        graph = Graph()
        graph.add(Triple(EX.hasAge, RANGE, EX.Age))
        rules = RDFSRules(graph)
        entailed = rules.entail(Triple(EX.user1, EX.hasAge, Literal(28)))
        assert entailed == set()


class TestSaturation:
    def test_saturation_reaches_fixpoint(self, schema_graph):
        graph = schema_graph.copy()
        graph.add(Triple(EX.user1, EX.wrotePost, EX.post1))
        closed = saturate(graph)
        assert Triple(EX.user1, RDF_TYPE, EX.Blogger) in closed
        # Chained entailment: typing then subclass propagation.
        assert Triple(EX.user1, RDF_TYPE, EX.Person) in closed
        assert Triple(EX.user1, RDF_TYPE, EX.Agent) in closed
        assert Triple(EX.user1, EX.authored, EX.post1) in closed
        # Saturating again adds nothing.
        assert saturate(closed) == closed

    def test_saturate_copies_by_default(self, schema_graph):
        graph = schema_graph.copy()
        graph.add(Triple(EX.user1, EX.wrotePost, EX.post1))
        before = len(graph)
        saturate(graph)
        assert len(graph) == before

    def test_saturate_in_place(self, schema_graph):
        graph = schema_graph.copy()
        graph.add(Triple(EX.user1, EX.wrotePost, EX.post1))
        result = saturate(graph, in_place=True)
        assert result is graph
        assert Triple(EX.user1, RDF_TYPE, EX.Agent) in graph

    def test_graph_without_schema_is_unchanged(self):
        graph = Graph([Triple(EX.user1, EX.hasAge, Literal(28))])
        assert saturate(graph) == graph

    def test_cyclic_subclass_hierarchy_terminates(self):
        graph = Graph()
        graph.add(Triple(EX.A, SUBCLASS, EX.B))
        graph.add(Triple(EX.B, SUBCLASS, EX.A))
        graph.add(Triple(EX.x, RDF_TYPE, EX.A))
        closed = saturate(graph)
        assert Triple(EX.x, RDF_TYPE, EX.B) in closed
