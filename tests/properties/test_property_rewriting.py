"""Property-based tests of the paper's propositions on random instances.

For randomly generated AnS instances (random multi-valued dimension
assignments and multi-valued measures), the rewriting-based answers must
coincide with from-scratch evaluation:

* Proposition 1 — SLICE / DICE via σ over ``ans(Q)``;
* Proposition 2 — DRILL-OUT via Algorithm 1 over ``pres(Q)``;
* Proposition 3 — DRILL-IN via Algorithm 2 over ``pres(Q)`` and the instance;
* Equation (3) — the relational pipeline agrees with the literal Definition 1
  semantics.

The random instances deliberately include facts with missing dimensions,
missing measures, duplicate measure values and several values per dimension —
the RDF-specific situations that make the naive relational rewritings wrong.
"""

from hypothesis import given, settings, strategies as st

from repro.rdf import EX, Graph, Literal, RDF, Triple
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.bgp.query import BGPQuery
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery
from repro.olap.cube import Cube
from repro.olap.operations import Dice, DrillIn, DrillOut, Slice
from repro.olap.rewriting import (
    drill_in_from_partial,
    drill_out_from_partial,
    slice_dice_from_answer,
)

RDF_TYPE = RDF.term("type")

# --- random instance description ------------------------------------------
# Each fact is described by: (d1 values, d2 values, detail index or None,
# measure values).  Dimension values are small integers; measures too.

fact_strategy = st.tuples(
    st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=3),  # d1 values
    st.lists(st.integers(min_value=0, max_value=2), min_size=0, max_size=2),  # d2 values
    st.one_of(st.none(), st.integers(min_value=0, max_value=2)),              # detail
    st.lists(st.integers(min_value=0, max_value=9), min_size=0, max_size=4),  # measures
)
instance_strategy = st.lists(fact_strategy, min_size=1, max_size=12)
aggregate_strategy = st.sampled_from(["count", "sum", "avg", "min", "max"])


def build_instance(description) -> Graph:
    """Materialize an instance graph from the per-fact description tuples."""
    graph = Graph()
    for index, (d1_values, d2_values, detail, measures) in enumerate(description):
        fact = EX.term(f"fact{index}")
        graph.add(Triple(fact, RDF_TYPE, EX.Fact))
        for value in set(d1_values):
            graph.add(Triple(fact, EX.dim1, EX.term(f"a{value}")))
        for value in set(d2_values):
            graph.add(Triple(fact, EX.dim2, EX.term(f"b{value}")))
        if detail is not None:
            detail_node = EX.term(f"detail{detail}")
            graph.add(Triple(fact, EX.hasDetail, detail_node))
            graph.add(Triple(detail_node, EX.detailA, Literal(f"A{detail % 2}")))
        for position, value in enumerate(measures):
            # Measures are attached through intermediate observation nodes so
            # that identical values yield distinct measure-query embeddings
            # (the bag semantics situation of the paper).
            observation = EX.term(f"obs{index}_{position}")
            graph.add(Triple(fact, EX.hasObservation, observation))
            graph.add(Triple(observation, EX.value, Literal(value)))
    return graph


def build_query(aggregate: str, with_detail: bool) -> AnalyticalQuery:
    x, d1, d2 = Variable("x"), Variable("d1"), Variable("d2")
    body = [
        TriplePattern(x, RDF_TYPE, EX.Fact),
        TriplePattern(x, EX.dim1, d1),
        TriplePattern(x, EX.dim2, d2),
    ]
    if with_detail:
        detail, da = Variable("detail"), Variable("da")
        body.append(TriplePattern(x, EX.hasDetail, detail))
        body.append(TriplePattern(detail, EX.detailA, da))
    classifier = BGPQuery([x, d1, d2], body, name="c")
    observation, value = Variable("obs"), Variable("v")
    measure = BGPQuery(
        [x, value],
        [
            TriplePattern(x, RDF_TYPE, EX.Fact),
            TriplePattern(x, EX.hasObservation, observation),
            TriplePattern(observation, EX.value, value),
        ],
        name="m",
    )
    return AnalyticalQuery(classifier, measure, aggregate, name="Qrand")


@settings(max_examples=40, deadline=None)
@given(instance_strategy, aggregate_strategy)
def test_equation3_agrees_with_definition1(description, aggregate):
    instance = build_instance(description)
    query = build_query(aggregate, with_detail=False)
    evaluator = AnalyticalQueryEvaluator(instance)
    via_pres = evaluator.answer(query)
    via_definition = evaluator.answer_definition1(query)
    assert Cube(via_pres).same_cells(Cube(via_definition))


@settings(max_examples=40, deadline=None)
@given(instance_strategy, aggregate_strategy, st.integers(min_value=0, max_value=3))
def test_proposition1_slice_and_dice(description, aggregate, sliced_value):
    instance = build_instance(description)
    query = build_query(aggregate, with_detail=False)
    evaluator = AnalyticalQueryEvaluator(instance)
    materialized = evaluator.evaluate(query)

    slice_operation = Slice("d1", EX.term(f"a{sliced_value}"))
    transformed = slice_operation.apply(query)
    rewritten = slice_dice_from_answer(materialized.answer, transformed)
    assert Cube(rewritten).same_cells(Cube(evaluator.answer(transformed)))

    dice_operation = Dice({"d1": [EX.term("a0"), EX.term("a1")], "d2": [EX.term("b0")]})
    diced = dice_operation.apply(query)
    rewritten_dice = slice_dice_from_answer(materialized.answer, diced)
    assert Cube(rewritten_dice).same_cells(Cube(evaluator.answer(diced)))


@settings(max_examples=40, deadline=None)
@given(instance_strategy, aggregate_strategy, st.sampled_from(["d1", "d2"]))
def test_proposition2_drill_out(description, aggregate, dimension):
    instance = build_instance(description)
    query = build_query(aggregate, with_detail=False)
    evaluator = AnalyticalQueryEvaluator(instance)
    partial = evaluator.partial_result(query)
    operation = DrillOut(dimension)
    transformed = operation.apply(query)
    rewritten = drill_out_from_partial(partial, query, transformed)
    assert Cube(rewritten).same_cells(Cube(evaluator.answer(transformed)))


@settings(max_examples=40, deadline=None)
@given(instance_strategy, aggregate_strategy)
def test_proposition3_drill_in(description, aggregate):
    instance = build_instance(description)
    query = build_query(aggregate, with_detail=True)
    evaluator = AnalyticalQueryEvaluator(instance)
    partial = evaluator.partial_result(query)
    operation = DrillIn("da")
    transformed = operation.apply(query)
    rewritten = drill_in_from_partial(partial, query, transformed, evaluator.bgp_evaluator)
    assert Cube(rewritten).same_cells(Cube(evaluator.answer(transformed)))


@settings(max_examples=30, deadline=None)
@given(instance_strategy, st.sampled_from(["d1", "d2"]))
def test_drill_out_then_drill_back_in_recovers_the_cube(description, dimension):
    """DRILL-OUT followed by DRILL-IN on the same dimension is the identity on cells."""
    instance = build_instance(description)
    query = build_query("sum", with_detail=False)
    evaluator = AnalyticalQueryEvaluator(instance)

    coarse_query = DrillOut(dimension).apply(query)
    coarse = evaluator.evaluate(coarse_query)
    refined_query = DrillIn(dimension).apply(coarse_query)
    rewritten = drill_in_from_partial(
        coarse.partial, coarse_query, refined_query, evaluator.bgp_evaluator
    )
    original = evaluator.answer(query)
    refined_cells = {frozenset(zip(refined_query.dimension_names, row[:-1])): row[-1]
                     for row in rewritten.relation}
    original_cells = {frozenset(zip(query.dimension_names, row[:-1])): row[-1]
                      for row in original.relation}
    assert refined_cells == original_cells
