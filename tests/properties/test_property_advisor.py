"""Property-based safety of the calibrated cost model and the advisor loop.

A fitted :class:`~repro.olap.calibration.CostModel` may change *which
strategy* the planner picks — that is its purpose — but it must never
change *which cube* a transformation produces.  For random ≤6-op chains
over randomized blogger workloads (the oracle style of
``test_property_planner.py``), a session planned with a cost model fitted
from a profile pass — and optionally warm-started by the advisor's
recommendations — must produce cell-for-cell the same cube as from-scratch
evaluation at every step.
"""

from hypothesis import given, settings, strategies as st

from repro.datagen import BloggerConfig, blogger_dataset
from repro.datagen.blogger import sites_per_blogger_query
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.olap.calibration import MAX_SCALE, MIN_SCALE, CostModel
from repro.olap.cube import Cube
from repro.olap.session import OLAPSession

from tests.properties.test_property_planner import _blogger, _draw_operation, _value_pool

_SETTINGS = dict(max_examples=10, deadline=None)


def _chain(data, session, query, pools, chain_length):
    """Replay a random chain, asserting every planned cube against scratch."""
    scratch_engine = AnalyticalQueryEvaluator(session.instance)
    session.execute(query)
    current = query
    for _ in range(chain_length):
        operation = _draw_operation(data.draw, current, pools)
        if operation is None:
            break
        planned = session.transform(current, operation, strategy="plan")
        transformed = planned.query
        scratch = Cube(scratch_engine.answer(transformed), transformed)
        assert planned.same_cells(scratch), (
            f"fitted-model planner diverged from scratch on {transformed.name} "
            f"(strategy {session.history[-1].strategy}, "
            f"model {session.cost_model.describe()})"
        )
        current = transformed


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=25),
    chain_length=st.integers(min_value=1, max_value=6),
)
@settings(**_SETTINGS)
def test_fitted_model_never_changes_the_cube(data, seed, chain_length):
    dataset = _blogger(seed)
    query = sites_per_blogger_query(dataset.schema)
    pools = _value_pool(dataset, query)

    # Profile pass: random chain under the static model.
    profile = OLAPSession(dataset.instance, dataset.schema)
    _chain(data, profile, query, pools, chain_length)
    fitted = profile.fit_cost_model()

    # Replay another random chain under the fitted model.
    session = OLAPSession(dataset.instance, dataset.schema, cost_model=fitted)
    _chain(data, session, query, pools, chain_length)


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=25),
    chain_length=st.integers(min_value=1, max_value=6),
)
@settings(**_SETTINGS)
def test_advised_warm_start_never_changes_the_cube(data, seed, chain_length):
    dataset = _blogger(seed)
    query = sites_per_blogger_query(dataset.schema)
    pools = _value_pool(dataset, query)

    profile = OLAPSession(dataset.instance, dataset.schema)
    _chain(data, profile, query, pools, chain_length)
    report = profile.advise()

    session = OLAPSession(
        dataset.instance, dataset.schema, cost_model=report.cost_model
    )
    session.apply_recommendations(report)
    _chain(data, session, query, pools, chain_length)


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=25),
    chain_length=st.integers(min_value=1, max_value=6),
)
@settings(**_SETTINGS)
def test_adversarial_model_never_changes_the_cube(data, seed, chain_length):
    """Even a worst-case (but clamp-legal) model only changes strategies."""
    extreme = st.sampled_from([MIN_SCALE, 1.0, MAX_SCALE])
    model = CostModel(
        select_row_cost=data.draw(extreme),
        group_row_cost=data.draw(extreme),
        join_row_cost=data.draw(extreme),
        cached_cell_cost=data.draw(extreme) * 0.05,
        merge_cell_cost=data.draw(extreme) * 0.5,
        source="fitted",
    )
    dataset = _blogger(seed)
    query = sites_per_blogger_query(dataset.schema)
    pools = _value_pool(dataset, query)
    session = OLAPSession(dataset.instance, dataset.schema, cost_model=model)
    _chain(data, session, query, pools, chain_length)


@given(seed=st.integers(min_value=0, max_value=25))
@settings(**_SETTINGS)
def test_fitted_scales_stay_clamped(seed):
    dataset = _blogger(seed)
    query = sites_per_blogger_query(dataset.schema)
    session = OLAPSession(dataset.instance, dataset.schema)
    session.execute(query)
    from repro.olap.operations import DrillOut

    for dimension in list(query.dimension_names):
        session.transform(query, DrillOut(dimension), strategy="plan")
    model = session.fit_cost_model()
    for family, scale in model.family_scales.items():
        assert MIN_SCALE <= scale <= MAX_SCALE, (family, scale)
