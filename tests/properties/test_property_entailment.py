"""Differential oracle for entailment-aware cubes under schema evolution.

For random streams of instance updates **and schema-triple updates** (new
``rdfs:subClassOf`` / ``rdfs:subPropertyOf`` axioms arriving after session
construction, plus removals) over the retail workload, the three ways of
answering an analytical query under ρdf entailment must agree cell for
cell at every step:

* ``OLAPSession(..., entailment="saturate")`` — materialized closure,
  kept in sync with the *source* graph through its change log (additions
  re-saturate in place so cached cubes stay delta-patchable; removals
  rebuild);
* ``OLAPSession(..., entailment="rewrite")`` — per-query BGP expansion
  into entailment branches, no materialization;
* the pre-saturated scratch oracle — a plain evaluator over a fresh
  saturation of the current graph, rebuilt from nothing at every step.

The stream deliberately types some sales only via subclasses and records
some amounts only under a subproperty, so plain (entailment-off) answers
differ and any de-synchronization between the three is visible.  ROLL-UP
steps ride along: rolled cubes over entailed instances must match the
oracle at the rolled granularity too.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.rdf import EX, Literal, RDF, RDFS, Triple
from repro.rdf.graph import Graph
from repro.rdf.reasoning import saturate
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.datagen import RetailConfig, retail_dataset
from repro.datagen.retail import city_region_hierarchy, revenue_query
from repro.olap.cube import Cube
from repro.olap.operations import RollUp
from repro.olap.session import OLAPSession

#: Pinned profile: no deadline, reproduction blob printed on failure.
_SETTINGS = dict(max_examples=8, deadline=None, print_blob=True)

RDF_TYPE = RDF.term("type")
SUBCLASS = RDFS.term("subClassOf")
SUBPROPERTY = RDFS.term("subPropertyOf")

_dataset_cache = {}


def _retail(seed: int):
    if seed not in _dataset_cache:
        _dataset_cache[seed] = retail_dataset(
            RetailConfig(sales=50 + seed % 25, stores=5, products=10, cities=6,
                         regions=3, categories=4, departments=2,
                         subclass_only_fraction=0.4, promo_fraction=0.3, seed=seed)
        )
    return _dataset_cache[seed]


def _oracle_cube(source, query):
    """Plain evaluation over a fresh saturation of the current graph."""
    closure = Graph(name="oracle+rdfs")
    closure.add_all(source)
    saturate(closure, in_place=True)
    return Cube(AnalyticalQueryEvaluator(closure).answer(query), query)


# ---------------------------------------------------------------------------
# update generator: instance triples AND schema triples
# ---------------------------------------------------------------------------


def _apply_update(draw, source, counter):
    kind = draw(
        st.sampled_from(
            [
                "add_plain_sale",
                "add_subclass_sale",
                "add_promo_sale",
                "add_schema_subclass",
                "add_schema_subproperty",
                "add_deep_subclass_sale",
                "remove",
            ]
        )
    )
    if kind.startswith("add") and "schema" not in kind:
        sale = EX.term(f"ent_sale{next(counter)}")
        if kind == "add_subclass_sale":
            sale_type = draw(st.sampled_from([EX.OnlineSale, EX.StoreSale]))
        elif kind == "add_deep_subclass_sale":
            # Only entailed into Sale once FlashSale ⊑ OnlineSale has been
            # asserted by an earlier add_schema_subclass step; until then the
            # fact is (consistently) invisible to all three systems.
            sale_type = EX.FlashSale
        else:
            sale_type = EX.Sale
        source.add(Triple(sale, RDF_TYPE, sale_type))
        source.add(Triple(sale, EX.atStore, EX.term(f"store/s{draw(st.integers(0, 4))}")))
        source.add(Triple(sale, EX.ofProduct, EX.term(f"product/p{draw(st.integers(0, 9))}")))
        amount_predicate = EX.hasPromoAmount if kind == "add_promo_sale" else EX.hasAmount
        source.add(Triple(sale, amount_predicate, Literal(draw(st.integers(1, 300)))))
        return
    if kind == "add_schema_subclass":
        # A schema-triple delta that widens the closure: every FlashSale
        # (past and future) becomes a Sale.
        source.add(Triple(EX.FlashSale, SUBCLASS, EX.OnlineSale))
        return
    if kind == "add_schema_subproperty":
        source.add(Triple(EX.hasDiscountAmount, SUBPROPERTY, EX.hasAmount))
        sale = EX.term(f"ent_sale{next(counter)}")
        source.add(Triple(sale, RDF_TYPE, EX.Sale))
        source.add(Triple(sale, EX.atStore, EX.term("store/s0")))
        source.add(Triple(sale, EX.ofProduct, EX.term("product/p0")))
        source.add(Triple(sale, EX.hasDiscountAmount, Literal(draw(st.integers(1, 300)))))
        return
    triples = sorted(source, key=repr)
    if not triples:
        return
    source.remove(triples[draw(st.integers(0, len(triples) - 1))])


# ---------------------------------------------------------------------------
# the properties
# ---------------------------------------------------------------------------


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=15),
    steps=st.integers(min_value=1, max_value=5),
)
@settings(**_SETTINGS)
def test_saturate_rewrite_and_presaturated_scratch_agree(data, seed, steps):
    dataset = _retail(seed)
    source = dataset.instance.copy()
    query = revenue_query(dataset.schema)

    saturated = OLAPSession(source, dataset.schema, entailment="saturate")
    rewriting = OLAPSession(source, dataset.schema, entailment="rewrite")

    for _ in range(steps):
        _apply_update(data.draw, source, itertools.count(data.draw(st.integers(0, 10**6))))
        from_saturated = saturated.execute(query)
        from_rewriting = rewriting.execute(query)
        oracle = _oracle_cube(source, query)
        assert from_saturated.same_cells(oracle), (
            f"saturate diverged from pre-saturated scratch "
            f"(strategy {saturated.history[-1].strategy})"
        )
        assert from_rewriting.same_cells(oracle), (
            f"rewrite diverged from pre-saturated scratch "
            f"(strategy {rewriting.history[-1].strategy})"
        )


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=15),
    steps=st.integers(min_value=1, max_value=4),
)
@settings(**_SETTINGS)
def test_entailed_rolled_cubes_match_oracle(data, seed, steps):
    """ROLL-UP over an entailed instance stays oracle-equal across updates."""
    dataset = _retail(seed)
    source = dataset.instance.copy()
    query = revenue_query(dataset.schema)
    operation = RollUp("dcity", city_region_hierarchy(dataset.config))

    mode = data.draw(st.sampled_from(["saturate", "rewrite"]), label="entailment mode")
    session = OLAPSession(source, dataset.schema, entailment=mode)
    session.execute(query)
    rolled_query = operation.apply(query)
    counter = itertools.count()
    for _ in range(steps):
        _apply_update(data.draw, source, counter)
        rolled = session.transform(query, operation)
        assert rolled.same_cells(_oracle_cube(source, rolled_query)), (
            f"{mode} rolled cube diverged (strategy {session.history[-1].strategy})"
        )


@given(seed=st.integers(min_value=0, max_value=15))
@settings(**_SETTINGS)
def test_entailment_changes_answers_on_retail(seed):
    """Sanity of the workload itself: the generated data contains facts only
    reachable through entailment, so mode=None genuinely undercounts — the
    differential above is never comparing three identical no-ops."""
    dataset = _retail(seed)
    query = revenue_query(dataset.schema)
    plain = OLAPSession(dataset.instance, dataset.schema).execute(query)
    entailed = OLAPSession(dataset.instance, dataset.schema, entailment="rewrite").execute(query)
    assert sum(entailed.cells().values()) > sum(plain.cells().values())
