"""Property-based equivalence of the planner against both reference engines.

For random chains of OLAP operations (length ≤ 6) over randomized blogger
workloads, the cube the planner-driven session produces at every step must
equal the cube computed from scratch by the id-space engine AND the cube
computed by the frozen legacy (seed) engine — regardless of the session's
cache capacity, including the degenerate capacities 0 (nothing ever cached:
every plan falls back to scratch) and 1 (constant eviction churn).
"""

from hypothesis import given, settings, strategies as st

from repro.datagen import BloggerConfig, blogger_dataset
from repro.datagen.blogger import sites_per_blogger_query
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.bench.legacy import LegacyAnalyticalEvaluator
from repro.olap.cube import Cube
from repro.olap.operations import Dice, DrillIn, DrillOut, Slice
from repro.olap.session import OLAPSession

_SETTINGS = dict(max_examples=10, deadline=None)

_dataset_cache = {}


def _blogger(seed: int):
    if seed not in _dataset_cache:
        _dataset_cache[seed] = blogger_dataset(BloggerConfig(bloggers=20 + seed % 12, seed=seed))
    return _dataset_cache[seed]


def _value_pool(dataset, query):
    """Root-cube dimension values to draw SLICE/DICE arguments from."""
    cube = Cube(AnalyticalQueryEvaluator(dataset.instance).answer(query), query)
    return {
        dimension: sorted(cube.dimension_values(dimension), key=repr)
        for dimension in query.dimension_names
    }


def _draw_operation(draw, query, pools):
    """Draw one OLAP operation applicable to ``query`` (None when stuck).

    SLICE/DICE arguments are filtered through the query's current Σ so the
    drawn restriction never intersects to the empty set (which Definition 2
    forbids and Sigma rejects).
    """
    dimensions = list(query.dimension_names)
    choices = []
    sliceable = [
        (dimension, [v for v in pools.get(dimension, []) if query.sigma[dimension].allows(v)])
        for dimension in dimensions
    ]
    sliceable = [(dimension, values) for dimension, values in sliceable if values]
    if sliceable:
        choices.append("slice")
        choices.append("dice")
    if dimensions:
        choices.append("drill-out")
    # Dimensions drilled out earlier stay in the classifier body and can be
    # drilled back in; root-query bodies here have no other candidates.
    body = {variable.name for variable in query.classifier.variables()}
    drillable = sorted(body - set(dimensions) - {query.fact_variable.name})
    drillable = [name for name in drillable if name in pools]
    if drillable:
        choices.append("drill-in")
    if not choices:
        return None
    kind = draw(st.sampled_from(choices))
    if kind == "slice":
        dimension, values = draw(st.sampled_from(sliceable))
        return Slice(dimension, draw(st.sampled_from(values)))
    if kind == "dice":
        dimension, values = draw(st.sampled_from(sliceable))
        count = draw(st.integers(min_value=1, max_value=min(4, len(values))))
        start = draw(st.integers(min_value=0, max_value=len(values) - count))
        return Dice({dimension: values[start : start + count]})
    if kind == "drill-out":
        return DrillOut(draw(st.sampled_from(dimensions)))
    return DrillIn(draw(st.sampled_from(drillable)))


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=25),
    chain_length=st.integers(min_value=1, max_value=6),
    capacity=st.sampled_from([0, 1, None]),
)
@settings(**_SETTINGS)
def test_planner_chain_matches_both_engines(data, seed, chain_length, capacity):
    dataset = _blogger(seed)
    query = sites_per_blogger_query(dataset.schema)
    pools = _value_pool(dataset, query)

    kwargs = {} if capacity is None else {"cache_capacity": capacity}
    session = OLAPSession(dataset.instance, dataset.schema, **kwargs)
    scratch_engine = AnalyticalQueryEvaluator(dataset.instance)
    legacy_engine = LegacyAnalyticalEvaluator(dataset.instance)

    session.execute(query)
    current = query
    for _ in range(chain_length):
        operation = _draw_operation(data.draw, current, pools)
        if operation is None:
            break
        planned = session.transform(current, operation, strategy="plan")
        transformed = planned.query
        scratch = Cube(scratch_engine.answer(transformed), transformed)
        legacy = Cube(legacy_engine.answer(transformed), transformed)
        assert planned.same_cells(scratch), (
            f"planner diverged from id-space scratch on {transformed.name} "
            f"(strategy {session.history[-1].strategy}, capacity {capacity})"
        )
        assert scratch.same_cells(legacy), f"engines diverged on {transformed.name}"
        current = transformed


@given(seed=st.integers(min_value=0, max_value=25), capacity=st.sampled_from([0, 1, None]))
@settings(**_SETTINGS)
def test_repeated_operation_is_cache_stable(seed, capacity):
    """Answering the same operation twice gives identical cubes at any capacity."""
    dataset = _blogger(seed)
    query = sites_per_blogger_query(dataset.schema)
    pools = _value_pool(dataset, query)
    values = pools["dage"]
    if not values:
        return
    operation = Slice("dage", values[0])

    kwargs = {} if capacity is None else {"cache_capacity": capacity}
    session = OLAPSession(dataset.instance, dataset.schema, **kwargs)
    session.execute(query)
    first = session.transform(query, operation, strategy="plan")
    second = session.transform(query, operation, strategy="plan")
    assert first.same_cells(second)
    scratch = Cube(AnalyticalQueryEvaluator(dataset.instance).answer(first.query), first.query)
    assert second.same_cells(scratch)
