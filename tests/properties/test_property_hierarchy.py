"""Differential oracle for the hierarchy lattice under live graph updates.

Hypothesis generates chains of ≤6 operations interleaving ROLL-UP /
DRILL-DOWN moves over multi-level hierarchy stacks with instance updates
(fact additions, measure additions, triple removals), on the blogger
workload and on the skewed retail workload
(:mod:`repro.datagen.retail`).  After **every** navigation step the cube
the session serves — from cache, from a delta-patched refresh, rolled from
a cached finer lattice entry, rewritten from the origin's ``pres``, or
recomputed — must equal from-scratch evaluation of the *same rolled query*
on the *current* instance, cell for cell.  The matrix covers both
execution engines (``rows`` / ``columnar``), worker counts {1, 2} and
cache capacities 0 / 1 / default (0 disables every reuse path, so the
planner must degrade gracefully, never wrongly).
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import EX, Literal, RDF, Triple
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.datagen import BloggerConfig, RetailConfig, blogger_dataset, retail_dataset
from repro.datagen.blogger import sites_per_blogger_query
from repro.datagen.retail import (
    category_department_hierarchy,
    city_region_hierarchy,
    region_zone_hierarchy,
    revenue_query,
)
from repro.olap.cube import Cube
from repro.olap.hierarchy import DimensionHierarchy
from repro.olap.operations import DrillDown, RollUp
from repro.olap.session import OLAPSession

#: Pinned profile: no deadline, reproduction blob printed on failure.
_SETTINGS = dict(max_examples=8, deadline=None, print_blob=True)

RDF_TYPE = RDF.term("type")

try:  # the columnar engine is optional (numpy-backed)
    import numpy  # noqa: F401

    ENGINES = ("rows", "columnar")
except ImportError:  # pragma: no cover
    ENGINES = ("rows",)

_dataset_cache = {}


def _blogger(seed: int):
    if ("blogger", seed) not in _dataset_cache:
        _dataset_cache[("blogger", seed)] = blogger_dataset(
            BloggerConfig(bloggers=14 + seed % 6, seed=seed)
        )
    return _dataset_cache[("blogger", seed)]


def _retail(seed: int):
    if ("retail", seed) not in _dataset_cache:
        _dataset_cache[("retail", seed)] = retail_dataset(
            RetailConfig(sales=60 + seed % 20, stores=6, products=12, cities=6,
                         regions=3, categories=6, departments=2, seed=seed)
        )
    return _dataset_cache[("retail", seed)]


def _blogger_stacks(config):
    """Two-level stacks for both dimensions of the sites-per-blogger query."""
    bands = DimensionHierarchy.banded(
        [(0, 29, "young"), (30, 120, "senior")], name="age bands"
    )
    band_all = DimensionHierarchy.from_pairs(
        [("young", "anyone"), ("senior", "anyone")], name="bands->all"
    )
    cities = DimensionHierarchy(
        {EX.term(f"city/{label}"): f"country{index % 2}"
         for index, label in enumerate(_blogger_city_labels(config))},
        default="country-other",
        name="city->country",
    )
    countries = DimensionHierarchy.from_pairs(
        [("country0", "world"), ("country1", "world"), ("country-other", "world")],
        name="country->world",
    )
    return {"dage": [bands, band_all], "dcity": [cities, countries]}


def _blogger_city_labels(config):
    # Mirrors blogger_base_graph's city naming (EX.term(f"city/{label}")).
    from repro.datagen.blogger import _CITY_NAMES  # noqa: PLC0415

    return [
        _CITY_NAMES[index] if index < len(_CITY_NAMES) else f"City{index}"
        for index in range(config.cities)
    ]


def _retail_stacks(config):
    return {
        "dcity": [city_region_hierarchy(config), region_zone_hierarchy(config)],
        "dcat": [category_department_hierarchy(config)],
    }


# ---------------------------------------------------------------------------
# update generators
# ---------------------------------------------------------------------------


def _update_blogger(draw, instance, counter):
    kind = draw(st.sampled_from(["add_fact", "add_measure", "remove"]))
    if kind == "add_fact":
        tag = f"hier_user{next(counter)}"
        user = EX.term(tag)
        instance.add(Triple(user, RDF_TYPE, EX.Blogger))
        instance.add(Triple(user, EX.hasAge, Literal(draw(st.integers(18, 60)))))
        instance.add(Triple(user, EX.livesIn, EX.term("city/hier_city")))
        post = EX.term(f"{tag}_post")
        instance.add(Triple(user, EX.wrotePost, post))
        instance.add(Triple(post, EX.postedOn, EX.term("site/site0")))
        return
    triples = sorted(instance, key=repr)
    if not triples:
        return
    if kind == "add_measure":
        bloggers = sorted(
            {t.subject for t in triples if t.predicate == RDF_TYPE and t.object == EX.Blogger},
            key=repr,
        )
        if not bloggers:
            return
        author = draw(st.sampled_from(bloggers))
        post = EX.term(f"hier_post{next(counter)}")
        instance.add(Triple(author, EX.wrotePost, post))
        instance.add(Triple(post, EX.postedOn, EX.term("site/site1")))
        return
    victim = triples[draw(st.integers(0, len(triples) - 1))]
    instance.remove(victim)


def _update_retail(draw, instance, counter):
    """Add sales against *existing* stores/products, or remove a sale triple.

    New stores/cities are never introduced: the explicit hierarchies map the
    generated city/category terms only, and an unmapped member would
    (correctly) fail parent() in session and oracle alike — not the
    behaviour under test here.
    """
    kind = draw(st.sampled_from(["add_sale", "remove_sale_triple"]))
    if kind == "add_sale":
        sale = EX.term(f"sale/hier{next(counter)}")
        instance.add(Triple(sale, RDF_TYPE, EX.Sale))
        instance.add(Triple(sale, EX.atStore, EX.term(f"store/s{draw(st.integers(0, 5))}")))
        instance.add(Triple(sale, EX.ofProduct, EX.term(f"product/p{draw(st.integers(0, 11))}")))
        instance.add(Triple(sale, EX.hasAmount, Literal(draw(st.integers(1, 400)))))
        return
    sale_triples = sorted(
        (t for t in instance if t.predicate in (EX.hasAmount, EX.ofProduct, RDF_TYPE)
         and str(t.subject).startswith(str(EX.term("sale/")))),
        key=repr,
    )
    if not sale_triples:
        return
    victim = sale_triples[draw(st.integers(0, len(sale_triples) - 1))]
    instance.remove(victim)


# ---------------------------------------------------------------------------
# the chain driver
# ---------------------------------------------------------------------------


def _rollup_level(query, dimension):
    return sum(1 for stage in query.rollup if stage.dimension == dimension)


def _draw_move(draw, query, stacks):
    """One lattice move: ROLL-UP an eligible dimension or DRILL-DOWN."""
    choices = []
    for dimension, stack in sorted(stacks.items()):
        if dimension in query.dimension_names and _rollup_level(query, dimension) < len(stack):
            choices.append(("roll", dimension))
    if query.rollup:
        choices.append(("drill", None))
    if not choices:
        return None
    kind, dimension = draw(st.sampled_from(choices))
    if kind == "roll":
        return RollUp(dimension, stacks[dimension][_rollup_level(query, dimension)])
    return DrillDown()


def _run_chain(data, session, instance, query, stacks, update, chain_length):
    oracle = AnalyticalQueryEvaluator(instance)
    counter = itertools.count()
    session.execute(query)
    current = query
    for _ in range(chain_length):
        if data.draw(st.booleans(), label="update before move"):
            update(data.draw, instance, counter)
        move = _draw_move(data.draw, current, stacks)
        if move is None:
            break
        served = session.transform(current, move)
        transformed = served.query
        scratch = Cube(oracle.answer(transformed), transformed)
        assert served.same_cells(scratch), (
            f"lattice navigation diverged from scratch on {transformed.name} "
            f"(strategy {session.history[-1].strategy}, engine {session.engine}, "
            f"workers {session.workers})"
        )
        current = transformed


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=20),
    chain_length=st.integers(min_value=1, max_value=6),
    capacity=st.sampled_from([0, 1, None]),
    engine=st.sampled_from(ENGINES),
)
@settings(**_SETTINGS)
def test_blogger_lattice_chain_matches_scratch(data, seed, chain_length, capacity, engine):
    dataset = _blogger(seed)
    instance = dataset.instance.copy()
    query = sites_per_blogger_query(dataset.schema)
    stacks = _blogger_stacks(dataset.config)
    kwargs = {} if capacity is None else {"cache_capacity": capacity}
    session = OLAPSession(instance, dataset.schema, engine=engine, **kwargs)
    _run_chain(data, session, instance, query, stacks, _update_blogger, chain_length)


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=20),
    chain_length=st.integers(min_value=1, max_value=6),
    capacity=st.sampled_from([0, 1, None]),
    workers=st.sampled_from([1, 2]),
)
@settings(**_SETTINGS)
def test_retail_lattice_chain_matches_scratch(data, seed, chain_length, capacity, workers):
    dataset = _retail(seed)
    instance = dataset.instance.copy()
    query = revenue_query(dataset.schema)
    stacks = _retail_stacks(dataset.config)
    kwargs = {} if capacity is None else {"cache_capacity": capacity}
    session = OLAPSession(instance, dataset.schema, workers=workers, **kwargs)
    _run_chain(data, session, instance, query, stacks, _update_retail, chain_length)


@given(
    seed=st.integers(min_value=0, max_value=20),
    engine=st.sampled_from(ENGINES),
)
@settings(**_SETTINGS)
def test_full_stack_roll_and_unroll_is_identity(seed, engine):
    """Rolling every stack level then drilling all the way back down serves
    the original cube again (through whatever strategies the planner picks)."""
    dataset = _retail(seed)
    query = revenue_query(dataset.schema)
    stacks = _retail_stacks(dataset.config)
    session = OLAPSession(dataset.instance, dataset.schema, engine=engine)
    base = session.execute(query)
    current = query
    depth = 0
    for dimension, stack in sorted(stacks.items()):
        for hierarchy in stack:
            current = session.transform(current, RollUp(dimension, hierarchy)).query
            depth += 1
    for _ in range(depth):
        current = session.transform(current, DrillDown()).query
    assert current.name != query.name  # a distinct navigation-derived query...
    unrolled = session.transform(current, RollUp("dcity", stacks["dcity"][0]))
    drilled = session.transform(unrolled.query, DrillDown())
    oracle = Cube(AnalyticalQueryEvaluator(dataset.instance).answer(drilled.query), drilled.query)
    assert drilled.same_cells(oracle)
    assert base.same_cells(
        Cube(AnalyticalQueryEvaluator(dataset.instance).answer(query), query)
    )
