"""Differential oracle for incremental cube maintenance under graph updates.

Hypothesis generates streams of interleaved instance updates (triple adds /
removals) and OLAP transformations over blogger and video instances; after
**every** step the cube the session serves — whether it came from a cache
hit, a delta-patched refresh, a rewriting over (possibly refreshed)
materialized results, or a from-scratch fallback — must equal a from-scratch
recomputation on the *current* instance, cell for cell
(:meth:`repro.olap.cube.Cube.same_cells`), for every aggregate
(COUNT/SUM/AVG/MIN/MAX) and at cache capacities 0, 1 and the default.

The hypothesis profile is pinned for this suite: ``deadline=None`` (instance
copies and recomputations dwarf any per-example deadline) and
``print_blob=True`` so CI failures print the reproduction seed.
"""

from hypothesis import given, settings, strategies as st

from repro.rdf import EX, Literal, RDF, Triple
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery
from repro.datagen import BloggerConfig, VideoConfig, blogger_dataset, video_dataset
from repro.datagen.blogger import words_per_blogger_query
from repro.datagen.videos import views_per_url_query
from repro.olap.cube import Cube
from repro.olap.operations import Dice, DrillIn, DrillOut, Slice
from repro.olap.session import OLAPSession

#: Pinned profile: no deadline, reproduction blob printed on failure.
_SETTINGS = dict(max_examples=8, deadline=None, print_blob=True)

RDF_TYPE = RDF.term("type")

_dataset_cache = {}


def _blogger(seed: int):
    if ("blogger", seed) not in _dataset_cache:
        _dataset_cache[("blogger", seed)] = blogger_dataset(
            BloggerConfig(bloggers=12 + seed % 6, seed=seed)
        )
    return _dataset_cache[("blogger", seed)]


def _video(seed: int):
    if ("video", seed) not in _dataset_cache:
        _dataset_cache[("video", seed)] = video_dataset(
            VideoConfig(videos=10 + seed % 5, websites=5, seed=seed)
        )
    return _dataset_cache[("video", seed)]


# ---------------------------------------------------------------------------
# update and transform generators
# ---------------------------------------------------------------------------


def _apply_update(draw, instance, counter):
    """Mutate the instance: add a new fact, extend one, or remove triples."""
    kind = draw(st.sampled_from(["add_fact", "add_measure", "remove", "remove_add"]))
    if kind == "add_fact":
        tag = f"hyp_user{next(counter)}"
        user = EX.term(tag)
        instance.add(Triple(user, RDF_TYPE, EX.Blogger))
        instance.add(Triple(user, EX.hasAge, Literal(draw(st.integers(18, 60)))))
        instance.add(Triple(user, EX.livesIn, EX.term(draw(st.sampled_from(["Madrid", "NY", "Kyoto"])))))
        post = EX.term(f"{tag}_post")
        instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
        instance.add(Triple(user, EX.wrotePost, post))
        instance.add(Triple(post, EX.postedOn, EX.term("hyp_site")))
        instance.add(Triple(post, EX.hasWordCount, Literal(draw(st.integers(1, 900)))))
        return
    triples = sorted(instance, key=repr)
    if not triples:
        return
    if kind == "add_measure":
        bloggers = [t.subject for t in triples if t.predicate == RDF_TYPE and t.object == EX.Blogger]
        if not bloggers:
            return
        author = draw(st.sampled_from(sorted(bloggers, key=repr)))
        post = EX.term(f"hyp_post{next(counter)}")
        instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
        instance.add(Triple(author, EX.wrotePost, post))
        instance.add(Triple(post, EX.postedOn, EX.term("hyp_site2")))
        instance.add(Triple(post, EX.hasWordCount, Literal(draw(st.integers(1, 900)))))
        return
    victim = triples[draw(st.integers(0, len(triples) - 1))]
    instance.remove(victim)
    if kind == "remove_add":
        # Remove one triple and immediately re-add it: the change log must
        # coalesce the pair away and derived results must be unaffected.
        instance.add(victim)


def _apply_video_update(draw, instance, counter):
    kind = draw(st.sampled_from(["add_video", "remove", "remove_add"]))
    if kind == "add_video":
        tag = f"hyp_video{next(counter)}"
        video = EX.term(tag)
        instance.add(Triple(video, RDF_TYPE, EX.Video))
        instance.add(Triple(video, EX.viewNum, Literal(draw(st.integers(1, 500)))))
        websites = sorted(
            {t.subject for t in instance if t.predicate == EX.hasUrl}, key=repr
        )
        if websites:
            instance.add(Triple(video, EX.postedOn, draw(st.sampled_from(websites))))
        return
    triples = sorted(instance, key=repr)
    if not triples:
        return
    victim = triples[draw(st.integers(0, len(triples) - 1))]
    instance.remove(victim)
    if kind == "remove_add":
        instance.add(victim)


def _value_pool(instance, query):
    cube = Cube(AnalyticalQueryEvaluator(instance).answer(query), query)
    return {
        dimension: sorted(cube.dimension_values(dimension), key=repr)
        for dimension in query.dimension_names
    }


def _draw_operation(draw, query, pools):
    """One applicable OLAP operation for ``query`` (None when stuck)."""
    dimensions = list(query.dimension_names)
    sliceable = [
        (d, [v for v in pools.get(d, []) if query.sigma[d].allows(v)]) for d in dimensions
    ]
    sliceable = [(d, values) for d, values in sliceable if values]
    choices = []
    if sliceable:
        choices += ["slice", "dice"]
    if dimensions:
        choices.append("drill-out")
    body = {variable.name for variable in query.classifier.variables()}
    drillable = sorted(
        name
        for name in body - set(dimensions) - {query.fact_variable.name}
        if name in pools
    )
    if drillable:
        choices.append("drill-in")
    if not choices:
        return None
    kind = draw(st.sampled_from(choices))
    if kind == "slice":
        dimension, values = draw(st.sampled_from(sliceable))
        return Slice(dimension, draw(st.sampled_from(values)))
    if kind == "dice":
        dimension, values = draw(st.sampled_from(sliceable))
        count = draw(st.integers(1, min(3, len(values))))
        start = draw(st.integers(0, len(values) - count))
        return Dice({dimension: values[start : start + count]})
    if kind == "drill-out":
        return DrillOut(draw(st.sampled_from(dimensions)))
    return DrillIn(draw(st.sampled_from(drillable)))


def _check(session, cube, query, capacity):
    scratch = Cube(AnalyticalQueryEvaluator(session.instance).answer(query), query)
    assert cube.same_cells(scratch), (
        f"maintained cube diverged from scratch on {query.name} "
        f"(strategy {session.history[-1].strategy}, capacity {capacity}): "
        f"{cube.cells()} != {scratch.cells()}"
    )


# ---------------------------------------------------------------------------
# the oracles
# ---------------------------------------------------------------------------


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=12),
    aggregate=st.sampled_from(["count", "sum", "avg", "min", "max"]),
    capacity=st.sampled_from([0, 1, None]),
    steps=st.integers(min_value=2, max_value=8),
)
@settings(**_SETTINGS)
def test_blogger_update_streams(data, seed, aggregate, capacity, steps):
    import itertools

    dataset = _blogger(seed)
    instance = dataset.instance.copy()
    base = words_per_blogger_query(dataset.schema)
    query = AnalyticalQuery(
        base.classifier, base.measure, aggregate, name=f"Q_{aggregate}"
    )
    pools = _value_pool(instance, query)
    kwargs = {} if capacity is None else {"cache_capacity": capacity}
    session = OLAPSession(instance, dataset.schema, **kwargs)
    counter = itertools.count()

    _check(session, session.execute(query), query, capacity)
    current = query
    for _ in range(steps):
        action = data.draw(st.sampled_from(["update", "transform", "re-execute"]))
        if action == "update":
            _apply_update(data.draw, instance, counter)
            _check(session, session.execute(query), query, capacity)
        elif action == "re-execute":
            _check(session, session.execute(current), current, capacity)
        else:
            operation = _draw_operation(data.draw, current, pools)
            if operation is None:
                continue
            cube = session.transform(current, operation, strategy="plan")
            current = cube.query
            _check(session, cube, current, capacity)


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=10),
    capacity=st.sampled_from([0, 1, None]),
    steps=st.integers(min_value=2, max_value=6),
)
@settings(**_SETTINGS)
def test_video_update_streams(data, seed, capacity, steps):
    import itertools

    dataset = _video(seed)
    instance = dataset.instance.copy()
    query = views_per_url_query(dataset.schema)
    drilled = DrillIn("d3").apply(query)
    pools = _value_pool(instance, query)
    pools.update(
        {
            name: values
            for name, values in _value_pool(instance, drilled).items()
            if name not in pools
        }
    )
    kwargs = {} if capacity is None else {"cache_capacity": capacity}
    session = OLAPSession(instance, dataset.schema, **kwargs)
    counter = itertools.count()

    _check(session, session.execute(query), query, capacity)
    current = query
    for _ in range(steps):
        action = data.draw(st.sampled_from(["update", "transform", "re-execute"]))
        if action == "update":
            _apply_video_update(data.draw, instance, counter)
            _check(session, session.execute(query), query, capacity)
        elif action == "re-execute":
            _check(session, session.execute(current), current, capacity)
        else:
            operation = _draw_operation(data.draw, current, pools)
            if operation is None:
                continue
            cube = session.transform(current, operation, strategy="plan")
            current = cube.query
            _check(session, cube, current, capacity)


@given(seed=st.integers(min_value=0, max_value=12))
@settings(**_SETTINGS)
def test_small_updates_do_refresh_not_recompute(seed):
    """The refresh machinery is actually exercised: a small update batch on
    a warmed session patches the cached root instead of recomputing it."""
    dataset = _blogger(seed)
    instance = dataset.instance.copy()
    query = words_per_blogger_query(dataset.schema)
    session = OLAPSession(instance, dataset.schema)
    session.execute(query)
    tag = EX.term(f"refresh_probe{seed}")
    post = EX.term(f"refresh_probe{seed}_post")
    instance.add(Triple(tag, RDF_TYPE, EX.Blogger))
    instance.add(Triple(tag, EX.hasAge, Literal(30)))
    instance.add(Triple(tag, EX.livesIn, EX.term("Madrid")))
    instance.add(Triple(post, RDF_TYPE, EX.BlogPost))
    instance.add(Triple(tag, EX.wrotePost, post))
    instance.add(Triple(post, EX.hasWordCount, Literal(123)))
    cube = session.execute(query)
    assert session.history[-1].strategy == "refresh"
    assert session.cache.stats.refreshes == 1
    _check(session, cube, query, None)
