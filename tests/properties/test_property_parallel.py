"""Differential oracle for the partitioned parallel execution engine.

Hypothesis generates chains of up to six OLAP operations over blogger and
video instances; at the root and after **every** transformation the
shard-parallel engine (workers ∈ {1, 2, 4} × shard counts {1, 3, 7}, all
five aggregates COUNT/SUM/AVG/MIN/MAX plus count_distinct's set-merge path)
must produce a cube cell-for-cell equal to the serial id-space engine — the
oracle, mirroring PR 3's differential-maintenance suite.  ``pres(Q)`` must
also agree as a bag once the opaque ``newk()`` keys are projected away.

The worker/shard choice pools can be pinned from the environment
(``REPRO_PARALLEL_WORKERS`` / ``REPRO_PARALLEL_SHARDS``, comma-separated) —
that is how the CI shard-count matrix runs each leg against one
configuration.  The thread backend is used throughout: the merge algebra is
backend-independent, and the process backend's plumbing is covered by
``tests/olap/test_parallel.py``.
"""

import os

from hypothesis import given, settings, strategies as st

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery, KEY_COLUMN
from repro.algebra.operators import project
from repro.datagen import BloggerConfig, VideoConfig, blogger_dataset, video_dataset
from repro.datagen.blogger import words_per_blogger_query
from repro.datagen.videos import views_per_url_query
from repro.olap.cube import Cube
from repro.olap.operations import Dice, DrillIn, DrillOut, Slice
from repro.olap.parallel import ParallelExecutor

#: Pinned profile: no deadline (instance evaluation dwarfs per-example
#: budgets), reproduction blob printed on CI failures.
_SETTINGS = dict(max_examples=8, deadline=None, print_blob=True)

AGGREGATES = ("count", "sum", "avg", "min", "max", "count_distinct")


def _env_choices(name, default):
    value = os.environ.get(name, "").strip()
    if value:
        return tuple(int(item) for item in value.split(","))
    return default


WORKER_CHOICES = _env_choices("REPRO_PARALLEL_WORKERS", (1, 2, 4))
SHARD_CHOICES = _env_choices("REPRO_PARALLEL_SHARDS", (1, 3, 7))

_dataset_cache = {}


def _blogger(seed: int):
    if ("blogger", seed) not in _dataset_cache:
        _dataset_cache[("blogger", seed)] = blogger_dataset(
            BloggerConfig(bloggers=14 + seed % 8, seed=seed)
        )
    return _dataset_cache[("blogger", seed)]


def _video(seed: int):
    if ("video", seed) not in _dataset_cache:
        _dataset_cache[("video", seed)] = video_dataset(
            VideoConfig(videos=12 + seed % 6, websites=5, seed=seed)
        )
    return _dataset_cache[("video", seed)]


def _root_query(scenario: str, dataset, aggregate: str) -> AnalyticalQuery:
    if scenario == "blogger":
        base = words_per_blogger_query(dataset.schema)
    else:
        base = views_per_url_query(dataset.schema)
    return AnalyticalQuery(
        base.classifier, base.measure, aggregate, name=f"Q_{scenario}_{aggregate}"
    )


def _value_pool(evaluator, query):
    cube = Cube(evaluator.answer(query), query)
    return {
        dimension: sorted(cube.dimension_values(dimension), key=repr)
        for dimension in query.dimension_names
    }


def _draw_operation(draw, query, pools):
    """Draw one applicable OLAP operation (None when the query is stuck)."""
    dimensions = list(query.dimension_names)
    sliceable = [
        (dimension, [v for v in pools.get(dimension, []) if query.sigma[dimension].allows(v)])
        for dimension in dimensions
    ]
    sliceable = [(dimension, values) for dimension, values in sliceable if values]
    choices = []
    if sliceable:
        choices.extend(["slice", "dice"])
    if dimensions:
        choices.append("drill-out")
    body = {variable.name for variable in query.classifier.variables()}
    drillable = sorted(body - set(dimensions) - {query.fact_variable.name})
    drillable = [name for name in drillable if name in pools]
    if drillable:
        choices.append("drill-in")
    if not choices:
        return None
    kind = draw(st.sampled_from(choices))
    if kind == "slice":
        dimension, values = draw(st.sampled_from(sliceable))
        return Slice(dimension, draw(st.sampled_from(values)))
    if kind == "dice":
        dimension, values = draw(st.sampled_from(sliceable))
        count = draw(st.integers(min_value=1, max_value=min(4, len(values))))
        start = draw(st.integers(min_value=0, max_value=len(values) - count))
        return Dice({dimension: values[start : start + count]})
    if kind == "drill-out":
        return DrillOut(draw(st.sampled_from(dimensions)))
    return DrillIn(draw(st.sampled_from(drillable)))


def _assert_parallel_matches_serial(executor, serial, query):
    parallel = executor.evaluate(query, materialize_partial=True)
    oracle_partial = serial.partial_result(query)
    oracle = Cube(serial.answer_from_partial(query, oracle_partial), query)
    cube = Cube(parallel.answer, query)
    assert cube.same_cells(oracle), (
        f"parallel diverged from the serial oracle on {query.name} "
        f"({executor.workers} workers, {executor.shard_count} shards)"
    )
    keyless = [name for name in oracle_partial.columns if name != KEY_COLUMN]
    assert project(parallel.partial.storage, keyless).bag_equal(
        project(oracle_partial.storage, keyless)
    ), f"pres(Q) diverged modulo keys on {query.name}"


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=15),
    scenario=st.sampled_from(["blogger", "video"]),
    aggregate=st.sampled_from(AGGREGATES),
    workers=st.sampled_from(WORKER_CHOICES),
    shards=st.sampled_from(SHARD_CHOICES),
    chain_length=st.integers(min_value=1, max_value=6),
)
@settings(**_SETTINGS)
def test_parallel_chain_matches_serial_oracle(
    data, seed, scenario, aggregate, workers, shards, chain_length
):
    dataset = _blogger(seed) if scenario == "blogger" else _video(seed)
    serial = AnalyticalQueryEvaluator(dataset.instance)
    query = _root_query(scenario, dataset, aggregate)
    pools = _value_pool(serial, query)

    executor = ParallelExecutor(
        AnalyticalQueryEvaluator(dataset.instance),
        workers=workers,
        shard_count=shards,
        backend="thread" if workers > 1 else "serial",
    )
    try:
        _assert_parallel_matches_serial(executor, serial, query)
        current = query
        for _ in range(chain_length):
            operation = _draw_operation(data.draw, current, pools)
            if operation is None:
                break
            current = operation.apply(current)
            _assert_parallel_matches_serial(executor, serial, current)
    finally:
        executor.close()


@given(
    seed=st.integers(min_value=0, max_value=15),
    aggregate=st.sampled_from(AGGREGATES),
    workers=st.sampled_from(WORKER_CHOICES),
    shards=st.sampled_from(SHARD_CHOICES),
)
@settings(**_SETTINGS)
def test_parallel_session_execute_matches_serial_oracle(seed, aggregate, workers, shards):
    """OLAPSession(workers=...) serves root executes equal to the oracle.

    The session may route the evaluation serially (the planner prices tiny
    instances below the dispatch overhead) or in parallel; either way the
    served cube must match a from-scratch serial recomputation.
    """
    from repro.olap.session import OLAPSession

    dataset = _blogger(seed)
    query = _root_query("blogger", dataset, aggregate)
    serial = AnalyticalQueryEvaluator(dataset.instance)
    with OLAPSession(
        dataset.instance,
        dataset.schema,
        workers=workers,
        shard_count=shards,
        parallel_backend="thread",
    ) as session:
        cube = session.execute(query)
        assert cube.same_cells(Cube(serial.answer(query), query))
        assert session.history[-1].strategy in ("scratch", "parallel", "cache")
