"""Differential oracle: the mmap-backed snapshot graph against the heap.

Hypothesis generates chains of OLAP operations over blogger and video
instances; every query in the chain is answered twice — once on the live
heap instance, once on a memory-mapped snapshot of it — and the cubes must
be cell-for-cell equal, with ``pres(Q)`` bag-equal modulo the opaque
``newk()`` keys.  The mapped graph differs from the heap one in every
internal (binary-search matching over file-backed columns, lazy term
decoding, header-served statistics), so agreement here pins the storage
subsystem to the semantics of the in-memory engine it replaces.
"""

import pytest

pytest.importorskip("numpy")  # snapshots require the [fast] extra

from hypothesis import given, settings, strategies as st

from repro.algebra.operators import project
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import KEY_COLUMN
from repro.datagen import BloggerConfig, VideoConfig, blogger_dataset, video_dataset
from repro.olap.cube import Cube
from repro.storage import load_snapshot, save_snapshot

from tests.properties.test_property_columnar import (
    AGGREGATES,
    _blogger,
    _draw_operation,
    _root_query,
    _value_pool,
    _video,
)

_SETTINGS = dict(max_examples=8, deadline=None, print_blob=True)

_mapped_cache = {}


def _mapped_instance(scenario: str, seed: int, instance, tmp_path_factory):
    """One snapshot + mapped graph per (scenario, seed), reused across examples."""
    key = (scenario, seed)
    if key not in _mapped_cache:
        path = str(
            tmp_path_factory.mktemp("property-snapshots") / f"{scenario}_{seed}.snap"
        )
        save_snapshot(instance, path)
        _mapped_cache[key] = load_snapshot(path, mmap=True)
    return _mapped_cache[key]


def _assert_backends_agree(mapped_engine, heap_engine, query):
    mapped = mapped_engine.evaluate(query, materialize_partial=True)
    heap = heap_engine.evaluate(query, materialize_partial=True)
    assert Cube(mapped.answer, query).same_cells(Cube(heap.answer, query)), (
        f"mmap-backed evaluation diverged from the heap oracle on {query.name}"
    )
    keyless = [name for name in heap.partial.columns if name != KEY_COLUMN]
    assert project(mapped.partial.storage, keyless).bag_equal(
        project(heap.partial.storage, keyless)
    ), f"pres(Q) diverged modulo keys on {query.name}"


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=15),
    scenario=st.sampled_from(["blogger", "video"]),
    aggregate=st.sampled_from(AGGREGATES),
    chain_length=st.integers(min_value=1, max_value=5),
)
@settings(**_SETTINGS)
def test_mapped_chain_matches_heap_oracle(
    data, seed, scenario, aggregate, chain_length, tmp_path_factory
):
    dataset = _blogger(seed) if scenario == "blogger" else _video(seed)
    mapped_graph = _mapped_instance(scenario, seed, dataset.instance, tmp_path_factory)
    mapped_engine = AnalyticalQueryEvaluator(mapped_graph)
    heap_engine = AnalyticalQueryEvaluator(dataset.instance)
    query = _root_query(scenario, dataset, aggregate)
    pools = _value_pool(heap_engine, query)

    _assert_backends_agree(mapped_engine, heap_engine, query)
    current = query
    for _ in range(chain_length):
        operation = _draw_operation(data.draw, current, pools)
        if operation is None:
            break
        current = operation.apply(current)
        _assert_backends_agree(mapped_engine, heap_engine, current)


@given(
    seed=st.integers(min_value=0, max_value=15),
    aggregate=st.sampled_from(AGGREGATES),
    shards=st.sampled_from((1, 3, 7)),
)
@settings(**_SETTINGS)
def test_mapped_shard_evaluation_matches_heap_oracle(
    seed, aggregate, shards, tmp_path_factory
):
    """Partitioned evaluation over the mapped graph merges to the serial
    heap answer across shard counts — the zero-copy worker contract."""
    from repro.olap.parallel import ParallelExecutor

    dataset = _blogger(seed)
    mapped_graph = _mapped_instance("blogger", seed, dataset.instance, tmp_path_factory)
    query = _root_query("blogger", dataset, aggregate)
    heap_engine = AnalyticalQueryEvaluator(dataset.instance)
    executor = ParallelExecutor(
        AnalyticalQueryEvaluator(mapped_graph),
        workers=1,
        shard_count=shards,
        backend="serial",
    )
    try:
        merged = executor.evaluate(query, materialize_partial=True)
        oracle = heap_engine.evaluate(query, materialize_partial=True)
        assert Cube(merged.answer, query).same_cells(Cube(oracle.answer, query))
        keyless = [name for name in oracle.partial.columns if name != KEY_COLUMN]
        assert project(merged.partial.storage, keyless).bag_equal(
            project(oracle.partial.storage, keyless)
        )
    finally:
        executor.close()
