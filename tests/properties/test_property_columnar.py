"""Differential oracle: the columnar engine against the row engine.

Hypothesis generates chains of up to six OLAP operations over blogger and
video instances across all five aggregates (plus count_distinct); at the
root and after every transformation the columnar engine's from-scratch
``ans(Q)`` must be cell-for-cell equal to the row engine's, and ``pres(Q)``
bag-equal once the opaque ``newk()`` keys are projected away.  This mirrors
the maintenance and parallel differential suites: whatever the engines'
internals, the cube is the contract.
"""

import pytest

pytest.importorskip("numpy")  # the suite forces engine="columnar" explicitly

from hypothesis import given, settings, strategies as st

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.analytics.query import AnalyticalQuery, KEY_COLUMN
from repro.algebra.operators import project
from repro.datagen import BloggerConfig, VideoConfig, blogger_dataset, video_dataset
from repro.datagen.blogger import words_per_blogger_query
from repro.datagen.videos import views_per_url_query
from repro.olap.cube import Cube
from repro.olap.operations import Dice, DrillIn, DrillOut, Slice

_SETTINGS = dict(max_examples=8, deadline=None, print_blob=True)

AGGREGATES = ("count", "sum", "avg", "min", "max", "count_distinct")

_dataset_cache = {}


def _blogger(seed: int):
    if ("blogger", seed) not in _dataset_cache:
        _dataset_cache[("blogger", seed)] = blogger_dataset(
            BloggerConfig(bloggers=14 + seed % 8, seed=seed)
        )
    return _dataset_cache[("blogger", seed)]


def _video(seed: int):
    if ("video", seed) not in _dataset_cache:
        _dataset_cache[("video", seed)] = video_dataset(
            VideoConfig(videos=12 + seed % 6, websites=5, seed=seed)
        )
    return _dataset_cache[("video", seed)]


def _root_query(scenario: str, dataset, aggregate: str) -> AnalyticalQuery:
    base = (
        words_per_blogger_query(dataset.schema)
        if scenario == "blogger"
        else views_per_url_query(dataset.schema)
    )
    return AnalyticalQuery(
        base.classifier, base.measure, aggregate, name=f"Q_{scenario}_{aggregate}"
    )


def _value_pool(evaluator, query):
    cube = Cube(evaluator.answer(query), query)
    return {
        dimension: sorted(cube.dimension_values(dimension), key=repr)
        for dimension in query.dimension_names
    }


def _draw_operation(draw, query, pools):
    """Draw one applicable OLAP operation (None when the query is stuck)."""
    dimensions = list(query.dimension_names)
    sliceable = [
        (dimension, [v for v in pools.get(dimension, []) if query.sigma[dimension].allows(v)])
        for dimension in dimensions
    ]
    sliceable = [(dimension, values) for dimension, values in sliceable if values]
    choices = []
    if sliceable:
        choices.extend(["slice", "dice"])
    if dimensions:
        choices.append("drill-out")
    body = {variable.name for variable in query.classifier.variables()}
    drillable = sorted(body - set(dimensions) - {query.fact_variable.name})
    drillable = [name for name in drillable if name in pools]
    if drillable:
        choices.append("drill-in")
    if not choices:
        return None
    kind = draw(st.sampled_from(choices))
    if kind == "slice":
        dimension, values = draw(st.sampled_from(sliceable))
        return Slice(dimension, draw(st.sampled_from(values)))
    if kind == "dice":
        dimension, values = draw(st.sampled_from(sliceable))
        count = draw(st.integers(min_value=1, max_value=min(4, len(values))))
        start = draw(st.integers(min_value=0, max_value=len(values) - count))
        return Dice({dimension: values[start : start + count]})
    if kind == "drill-out":
        return DrillOut(draw(st.sampled_from(dimensions)))
    return DrillIn(draw(st.sampled_from(drillable)))


def _assert_engines_agree(columnar_engine, row_engine, query):
    fast = columnar_engine.evaluate(query, materialize_partial=True)
    slow = row_engine.evaluate(query, materialize_partial=True)
    assert Cube(fast.answer, query).same_cells(Cube(slow.answer, query)), (
        f"columnar diverged from the row oracle on {query.name}"
    )
    keyless = [name for name in slow.partial.columns if name != KEY_COLUMN]
    assert project(fast.partial.storage, keyless).bag_equal(
        project(slow.partial.storage, keyless)
    ), f"pres(Q) diverged modulo keys on {query.name}"


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=15),
    scenario=st.sampled_from(["blogger", "video"]),
    aggregate=st.sampled_from(AGGREGATES),
    chain_length=st.integers(min_value=1, max_value=6),
)
@settings(**_SETTINGS)
def test_columnar_chain_matches_row_oracle(data, seed, scenario, aggregate, chain_length):
    dataset = _blogger(seed) if scenario == "blogger" else _video(seed)
    columnar_engine = AnalyticalQueryEvaluator(dataset.instance, engine="columnar")
    row_engine = AnalyticalQueryEvaluator(dataset.instance, engine="rows")
    query = _root_query(scenario, dataset, aggregate)
    pools = _value_pool(row_engine, query)

    _assert_engines_agree(columnar_engine, row_engine, query)
    current = query
    for _ in range(chain_length):
        operation = _draw_operation(data.draw, current, pools)
        if operation is None:
            break
        current = operation.apply(current)
        _assert_engines_agree(columnar_engine, row_engine, current)


@given(
    seed=st.integers(min_value=0, max_value=15),
    aggregate=st.sampled_from(AGGREGATES),
    shards=st.sampled_from((1, 3, 7)),
)
@settings(**_SETTINGS)
def test_columnar_shard_evaluation_matches_row_oracle(seed, aggregate, shards):
    """The batched fact-range prune: per-shard columnar evaluation merges to
    the serial row answer across shard counts (array-form γ states)."""
    from repro.olap.parallel import ParallelExecutor

    dataset = _blogger(seed)
    query = _root_query("blogger", dataset, aggregate)
    row_engine = AnalyticalQueryEvaluator(dataset.instance, engine="rows")
    executor = ParallelExecutor(
        AnalyticalQueryEvaluator(dataset.instance, engine="columnar"),
        workers=1,
        shard_count=shards,
        backend="serial",
    )
    try:
        merged = executor.evaluate(query, materialize_partial=True)
        oracle = row_engine.evaluate(query, materialize_partial=True)
        assert Cube(merged.answer, query).same_cells(Cube(oracle.answer, query))
        keyless = [name for name in oracle.partial.columns if name != KEY_COLUMN]
        assert project(merged.partial.storage, keyless).bag_equal(
            project(oracle.partial.storage, keyless)
        )
    finally:
        executor.close()
