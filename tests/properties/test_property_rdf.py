"""Property-based tests for the RDF substrate (store invariants, I/O roundtrips)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import EX, Graph, IRI, Literal, Triple
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.turtle import parse_turtle, serialize_turtle

# Strategies producing small, well-formed RDF terms.
local_names = st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=8)
iris = local_names.map(lambda name: EX.term(name))
literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(Literal),
    st.booleans().map(Literal),
    st.text(alphabet="abc xyz", max_size=12).map(Literal),
)
subjects = iris
predicates = local_names.map(lambda name: EX.term("p_" + name))
objects = st.one_of(iris, literals)
triples = st.builds(Triple, subjects, predicates, objects)
triple_lists = st.lists(triples, max_size=30)


class TestGraphInvariants:
    @given(triple_lists)
    def test_graph_size_equals_distinct_triples(self, triple_list):
        graph = Graph()
        for triple in triple_list:
            graph.add(triple)
        assert len(graph) == len(set(triple_list))

    @given(triple_lists)
    def test_every_added_triple_is_found_by_all_access_paths(self, triple_list):
        graph = Graph(triple_list)
        for triple in set(triple_list):
            assert triple in graph
            assert triple in set(graph.triples(triple.subject, None, None))
            assert triple in set(graph.triples(None, triple.predicate, None))
            assert triple in set(graph.triples(None, None, triple.object))

    @given(triple_lists)
    def test_add_then_remove_restores_the_original_graph(self, triple_list):
        graph = Graph(triple_list)
        extra = Triple(EX.term("extra_subject"), EX.term("extra_predicate"), Literal("extra"))
        before = graph.copy()
        added = graph.add(extra)
        if added:
            graph.remove(extra)
        assert graph == before

    @given(triple_lists, triple_lists)
    def test_union_contains_both_operands(self, first, second):
        a, b = Graph(first), Graph(second)
        union = a.union(b)
        assert all(triple in union for triple in a)
        assert all(triple in union for triple in b)
        assert len(union) <= len(a) + len(b)

    @given(triple_lists)
    def test_count_ids_is_consistent_with_iteration(self, triple_list):
        graph = Graph(triple_list)
        for triple in list(graph)[:10]:
            s = graph.encode_term(triple.subject)
            p = graph.encode_term(triple.predicate)
            assert graph.count_ids(s, p, None) == len(list(graph.match_ids(s, p, None)))


class TestSerializationRoundtrips:
    @settings(max_examples=50)
    @given(triple_lists)
    def test_ntriples_roundtrip(self, triple_list):
        graph = Graph(triple_list)
        assert parse_ntriples(serialize_ntriples(graph)) == graph

    @settings(max_examples=50)
    @given(triple_lists)
    def test_turtle_roundtrip(self, triple_list):
        graph = Graph(triple_list)
        assert parse_turtle(serialize_turtle(graph)) == graph

    @settings(max_examples=30)
    @given(triple_lists)
    def test_serialization_is_deterministic(self, triple_list):
        graph = Graph(triple_list)
        assert serialize_ntriples(graph) == serialize_ntriples(graph.copy())
