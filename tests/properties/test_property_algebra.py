"""Property-based tests (hypothesis) for the bag-relational algebra.

These check the algebraic laws the OLAP rewritings rely on: commutation of
selection with projection-free operators, idempotence of deduplication,
group-by consistency with manual grouping, and distributive-aggregate
combination.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.aggregates import AVG, COUNT, MAX, MIN, SUM
from repro.algebra.expressions import compare, equals
from repro.algebra.grouping import group_aggregate, group_rows
from repro.algebra.operators import dedup, join_on, project, select, union_all
from repro.algebra.relation import Relation

# Rows over a fixed 3-column schema (g: group, d: dimension, v: measure).
row_strategy = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=-50, max_value=50),
)
rows_strategy = st.lists(row_strategy, max_size=40)


def make_relation(rows):
    return Relation(["g", "d", "v"], rows)


class TestDedupProperties:
    @given(rows_strategy)
    def test_dedup_is_idempotent(self, rows):
        relation = make_relation(rows)
        once = dedup(relation)
        twice = dedup(once)
        assert once.rows == twice.rows

    @given(rows_strategy)
    def test_dedup_yields_distinct_rows_preserving_support(self, rows):
        relation = make_relation(rows)
        deduplicated = dedup(relation)
        assert len(set(deduplicated.rows)) == len(deduplicated.rows)
        assert set(deduplicated.rows) == set(relation.rows)


class TestSelectProjectProperties:
    @given(rows_strategy, st.integers(min_value=0, max_value=3))
    def test_selection_commutes_with_projection_on_kept_columns(self, rows, threshold):
        relation = make_relation(rows)
        predicate = compare("g", "<=", threshold)
        left = project(select(relation, predicate), ["g", "v"])
        right = select(project(relation, ["g", "v"]), predicate)
        assert left.bag_equal(right)

    @given(rows_strategy)
    def test_projection_preserves_cardinality(self, rows):
        relation = make_relation(rows)
        assert len(project(relation, ["g"])) == len(relation)

    @given(rows_strategy, st.integers(min_value=0, max_value=3))
    def test_selection_is_a_sub_bag(self, rows, value):
        relation = make_relation(rows)
        selected = select(relation, equals("g", value))
        full = relation.to_multiset()
        for row, count in selected.to_multiset().items():
            assert count <= full[row]


class TestUnionJoinProperties:
    @given(rows_strategy, rows_strategy)
    def test_union_all_cardinality_adds_up(self, rows_a, rows_b):
        a, b = make_relation(rows_a), make_relation(rows_b)
        assert len(union_all(a, b)) == len(a) + len(b)

    @given(rows_strategy, rows_strategy)
    def test_join_cardinality_matches_key_multiplicity_product(self, rows_a, rows_b):
        left = Relation(["g", "d", "v"], rows_a)
        right = Relation(["g", "w"], [(row[0], row[2]) for row in rows_b])
        joined = join_on(left, right, [("g", "g")])
        left_counts = defaultdict(int)
        for row in left:
            left_counts[row[0]] += 1
        right_counts = defaultdict(int)
        for row in right:
            right_counts[row[0]] += 1
        expected = sum(left_counts[key] * right_counts[key] for key in left_counts)
        assert len(joined) == expected

    @given(rows_strategy, rows_strategy)
    def test_join_is_symmetric_in_cardinality(self, rows_a, rows_b):
        left = Relation(["g", "d", "v"], rows_a)
        right = Relation(["h", "w"], [(row[0], row[2]) for row in rows_b])
        forward = join_on(left, right, [("g", "h")])
        backward = join_on(right, left, [("h", "g")])
        assert len(forward) == len(backward)


class TestGroupingProperties:
    @given(rows_strategy)
    def test_group_rows_partitions_the_input(self, rows):
        relation = make_relation(rows)
        groups = group_rows(relation, ["g"])
        assert sum(len(group) for group in groups.values()) == len(relation)

    @given(rows_strategy)
    def test_group_aggregate_matches_manual_computation(self, rows):
        relation = make_relation(rows)
        result = group_aggregate(relation, ["g"], "v", "sum")
        manual = defaultdict(int)
        for g, _, v in rows:
            manual[g] += v
        assert {row[0]: row[1] for row in result} == dict(manual)

    @given(rows_strategy)
    def test_count_equals_group_sizes(self, rows):
        relation = make_relation(rows)
        result = group_aggregate(relation, ["g"], "v", "count")
        sizes = defaultdict(int)
        for g, _, _ in rows:
            sizes[g] += 1
        assert {row[0]: row[1] for row in result} == dict(sizes)


class TestAggregateProperties:
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1),
           st.lists(st.integers(min_value=-100, max_value=100), min_size=1))
    def test_distributive_aggregates_combine_correctly(self, left, right):
        for aggregate in (SUM, COUNT, MIN, MAX):
            combined = aggregate.combine([aggregate(left), aggregate(right)])
            assert combined == aggregate(left + right)

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=2))
    def test_avg_is_not_combinable_but_bounded(self, values):
        average = AVG(values)
        assert min(values) <= average <= max(values)

    @given(st.lists(st.integers(), min_size=1))
    def test_count_matches_length(self, values):
        assert COUNT(values) == len(values)
