"""Property-based equivalence of the execution engines.

The id-space refactor must be semantics-preserving: on randomized blogger
and video workloads, the naive Definition 1 evaluation, the Equation (3)
pipeline (``pres``-based) and the OLAP-rewritten answers must all produce
identical cubes — in both the id-space engine (default) and the decoded
(eager-materialization) engine, and across the two engines.
"""

from hypothesis import given, settings, strategies as st

from repro.datagen import BloggerConfig, VideoConfig, blogger_dataset, video_dataset
from repro.datagen.blogger import sites_per_blogger_query, words_per_blogger_query
from repro.datagen.videos import views_per_url_query
from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.olap.cube import Cube
from repro.olap.operations import DrillIn, DrillOut, Slice
from repro.olap.rewriting import (
    drill_in_from_partial,
    drill_out_from_partial,
    slice_dice_from_answer,
)

_SETTINGS = dict(max_examples=8, deadline=None)

_blogger_cache = {}
_video_cache = {}


def _blogger(seed: int):
    if seed not in _blogger_cache:
        _blogger_cache[seed] = blogger_dataset(BloggerConfig(bloggers=25 + seed % 15, seed=seed))
    return _blogger_cache[seed]


def _video(seed: int):
    if seed not in _video_cache:
        _video_cache[seed] = video_dataset(
            VideoConfig(videos=20 + seed % 10, websites=6, seed=seed)
        )
    return _video_cache[seed]


def _cube(answer, query) -> Cube:
    return Cube(answer, query)


@given(seed=st.integers(min_value=0, max_value=40), use_words=st.booleans())
@settings(**_SETTINGS)
def test_equation3_matches_definition1_in_both_engines(seed, use_words):
    """answer() (Equation (3)) ≡ answer_definition1() ≡ across engines."""
    dataset = _blogger(seed)
    query = (
        words_per_blogger_query(dataset.schema)
        if use_words
        else sites_per_blogger_query(dataset.schema)
    )
    id_engine = AnalyticalQueryEvaluator(dataset.instance, id_space=True)
    decoded_engine = AnalyticalQueryEvaluator(dataset.instance, id_space=False)

    id_eq3 = _cube(id_engine.answer(query), query)
    id_def1 = _cube(id_engine.answer_definition1(query), query)
    decoded_eq3 = _cube(decoded_engine.answer(query), query)
    decoded_def1 = _cube(decoded_engine.answer_definition1(query), query)

    assert id_eq3.same_cells(id_def1)
    assert decoded_eq3.same_cells(decoded_def1)
    assert id_eq3.same_cells(decoded_eq3)


@given(seed=st.integers(min_value=0, max_value=40))
@settings(**_SETTINGS)
def test_slice_and_drillout_rewriting_match_scratch_in_both_engines(seed):
    """Rewritten SLICE / DRILL-OUT ≡ from-scratch, id-space ≡ decoded."""
    dataset = _blogger(seed)
    query = sites_per_blogger_query(dataset.schema)
    for id_space in (True, False):
        engine = AnalyticalQueryEvaluator(dataset.instance, id_space=id_space)
        materialized = engine.evaluate(query)
        cube = _cube(materialized.answer, query)
        if not len(cube):
            continue

        value = sorted(cube.dimension_values(query.dimension_names[0]), key=repr)[0]
        slice_op = Slice(query.dimension_names[0], value)
        sliced_query = slice_op.apply(query)
        rewritten = _cube(
            slice_dice_from_answer(materialized.answer, sliced_query), sliced_query
        )
        scratch = _cube(engine.answer(sliced_query), sliced_query)
        assert rewritten.same_cells(scratch)

        drill_op = DrillOut(query.dimension_names[0])
        drilled_query = drill_op.apply(query)
        rewritten = _cube(
            drill_out_from_partial(materialized.partial, query, drilled_query), drilled_query
        )
        scratch = _cube(engine.answer(drilled_query), drilled_query)
        assert rewritten.same_cells(scratch)


@given(seed=st.integers(min_value=0, max_value=30))
@settings(**_SETTINGS)
def test_drillin_rewriting_matches_scratch_in_both_engines(seed):
    """Rewritten DRILL-IN (pres ⋈ q_aux) ≡ from-scratch, id-space ≡ decoded."""
    dataset = _video(seed)
    query = views_per_url_query(dataset.schema)
    operation = DrillIn("d3")
    drilled_query = operation.apply(query)
    cubes = {}
    for id_space in (True, False):
        engine = AnalyticalQueryEvaluator(dataset.instance, id_space=id_space)
        materialized = engine.evaluate(query)
        rewritten = _cube(
            drill_in_from_partial(
                materialized.partial, query, drilled_query, engine.bgp_evaluator
            ),
            drilled_query,
        )
        scratch = _cube(engine.answer(drilled_query), drilled_query)
        assert rewritten.same_cells(scratch)
        cubes[id_space] = rewritten
    assert cubes[True].same_cells(cubes[False])
