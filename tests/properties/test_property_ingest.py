"""Differential oracle for streaming ingestion and refresh scheduling.

Hypothesis generates random interleaved add/remove streams and feeds every
mutation twice: directly into a shadow graph (the oracle) and through a
:class:`~repro.ingest.stream.StreamIngestor` — with varying micro-batch
sizes, so coalescing and batch boundaries land differently on every run —
into the live graph a warmed :class:`~repro.olap.session.OLAPSession`
serves.  Reads are interleaved at random points.  The invariants:

* after a drain the live graph equals the shadow graph, triple for triple
  (coalescing and micro-batching change *work*, never *state*);
* every cube the session serves mid-stream equals a from-scratch
  recomputation over the live graph at that moment, cell for cell —
  whatever the attached :class:`~repro.ingest.scheduler.RefreshScheduler`
  policy (none, eager, lazy, auto) decided for the cached entry, and at
  cache capacities 0, 1 and the default.

The hypothesis profile matches the other differential suites:
``deadline=None`` and ``print_blob=True``.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.datagen import BloggerConfig, blogger_dataset
from repro.datagen.blogger import words_per_blogger_query
from repro.ingest import RefreshScheduler, StreamIngestor
from repro.olap.cube import Cube
from repro.olap.session import OLAPSession
from repro.rdf import EX, Literal, RDF, Triple

_SETTINGS = dict(max_examples=8, deadline=None, print_blob=True)

RDF_TYPE = RDF.term("type")

_dataset_cache = {}


def _blogger(seed: int):
    if seed not in _dataset_cache:
        _dataset_cache[seed] = blogger_dataset(BloggerConfig(bloggers=10 + seed % 5, seed=seed))
    return _dataset_cache[seed]


def _fresh_fact(draw, counter):
    """Triples for one new blogger with one post (lands in the cube)."""
    tag = f"stream_user{next(counter)}"
    user = EX.term(tag)
    post = EX.term(f"{tag}_post")
    return [
        Triple(user, RDF_TYPE, EX.Blogger),
        Triple(user, EX.hasAge, Literal(draw(st.integers(18, 60)))),
        Triple(user, EX.livesIn, EX.term(draw(st.sampled_from(["Madrid", "NY", "Kyoto"])))),
        Triple(post, RDF_TYPE, EX.BlogPost),
        Triple(user, EX.wrotePost, post),
        Triple(post, EX.hasWordCount, Literal(draw(st.integers(1, 900)))),
    ]


def _draw_mutations(draw, shadow, counter):
    """One stream step: ``(sign, triple)`` pairs for both destinations."""
    kind = draw(
        st.sampled_from(
            ["add_fact", "remove", "flicker", "noop_pair", "readd_remove", "ghost_flicker"]
        )
    )
    if kind == "add_fact":
        return [(1, triple) for triple in _fresh_fact(draw, counter)]
    if kind == "ghost_flicker":
        # Remove a triple that was never present, then add it: the no-op
        # remove must not swallow the add (last-writer-wins, not
        # pair-cancellation — a regression case for the coalescer).
        ghost = Triple(EX.term(f"ghost{next(counter)}"), EX.hasAge, Literal(2))
        return [(-1, ghost), (1, ghost)]
    triples = sorted(shadow, key=repr)
    if not triples:
        return [(1, triple) for triple in _fresh_fact(draw, counter)]
    victim = triples[draw(st.integers(0, len(triples) - 1))]
    if kind == "remove":
        return [(-1, victim)]
    if kind == "flicker":
        # Remove and immediately re-add: nets to (at most) a no-op add.
        return [(-1, victim), (1, victim)]
    if kind == "readd_remove":
        # Add a triple that (per the shadow) already exists, then remove
        # it: the no-op add must not cancel the remove — the mirror
        # regression case for the coalescer.
        return [(1, victim), (-1, victim)]
    # noop_pair: add a fresh triple then retract it before it ever lands.
    phantom = Triple(EX.term(f"phantom{next(counter)}"), EX.hasAge, Literal(1))
    return [(1, phantom), (-1, phantom)]


def _check_cube(session, query, live):
    cube = session.execute(query)
    scratch = Cube(AnalyticalQueryEvaluator(live).answer(query), query)
    assert cube.same_cells(scratch), (
        f"served cube diverged from scratch at version {live.version} "
        f"(strategy {session.history[-1].strategy}): "
        f"{cube.cells()} != {scratch.cells()}"
    )


@given(
    data=st.data(),
    seed=st.integers(min_value=0, max_value=10),
    policy=st.sampled_from([None, "eager", "lazy", "auto"]),
    capacity=st.sampled_from([0, 1, None]),
    batch_size=st.integers(min_value=1, max_value=8),
    steps=st.integers(min_value=2, max_value=10),
)
@settings(**_SETTINGS)
def test_ingested_streams_match_direct_application(
    data, seed, policy, capacity, batch_size, steps
):
    dataset = _blogger(seed)
    live = dataset.instance.copy()
    shadow = dataset.instance.copy()
    query = words_per_blogger_query(dataset.schema)
    kwargs = {} if capacity is None else {"cache_capacity": capacity}
    session = OLAPSession(live, dataset.schema, **kwargs)
    scheduler = None if policy is None else RefreshScheduler([session], policy=policy)
    ingestor = StreamIngestor(
        live, batch_size=batch_size, max_batch_age=1000.0, scheduler=scheduler
    )
    counter = itertools.count()
    session.execute(query)  # warm the cache so refreshes have a target

    for _ in range(steps):
        action = data.draw(st.sampled_from(["mutate", "mutate", "pump", "read"]))
        if action == "mutate":
            for sign, triple in _draw_mutations(data.draw, shadow, counter):
                if sign > 0:
                    shadow.add(triple)
                    ingestor.add(triple)
                else:
                    shadow.remove(triple)
                    ingestor.remove(triple)
            ingestor.pump()  # applies only when the size threshold tripped
        elif action == "pump":
            ingestor.drain()
            assert set(live) == set(shadow)
        else:
            _check_cube(session, query, live)

    ingestor.drain()
    assert set(live) == set(shadow), (
        f"ingested graph diverged from direct application "
        f"(batch_size={batch_size}, policy={policy}, "
        f"stats={ingestor.stats.as_dict()})"
    )
    _check_cube(session, query, live)
    # Micro-batching may only reduce the mutations that hit the graph.
    assert ingestor.stats.applied_adds + ingestor.stats.applied_removes <= (
        ingestor.stats.submitted
    )


@given(
    seed=st.integers(min_value=0, max_value=6),
    policy=st.sampled_from(["eager", "lazy", "auto"]),
)
@settings(**_SETTINGS)
def test_scheduler_policies_converge_to_the_same_cube(seed, policy):
    """All policies serve identical cubes; only the *timing* of the patch
    work differs (eager pays before the read, lazy on it)."""
    dataset = _blogger(seed)
    live = dataset.instance.copy()
    query = words_per_blogger_query(dataset.schema)
    session = OLAPSession(live, dataset.schema)
    scheduler = RefreshScheduler([session], policy=policy)
    ingestor = StreamIngestor(live, batch_size=6, max_batch_age=1000.0, scheduler=scheduler)
    counter = itertools.count()
    session.execute(query)
    session.execute(query)  # make the entry hot for the auto policy

    # Deterministic mutations: hypothesis varies only seed and policy here.
    tag = EX.term(f"conv_user{seed}")
    post = EX.term(f"conv_user{seed}_post")
    for triple in (
        Triple(tag, RDF_TYPE, EX.Blogger),
        Triple(tag, EX.hasAge, Literal(33)),
        Triple(tag, EX.livesIn, EX.term("Madrid")),
        Triple(post, RDF_TYPE, EX.BlogPost),
        Triple(tag, EX.wrotePost, post),
        Triple(post, EX.hasWordCount, Literal(next(counter) + 100)),
    ):
        ingestor.add(triple)
    ingestor.drain()

    if policy == "lazy":
        assert scheduler.stats.lazy_marks + scheduler.stats.invalidations >= 1
    _check_cube(session, query, live)
    if policy in ("eager", "auto") and scheduler.stats.eager_refreshes:
        # The eager patch already ran; the read was a plain cache hit.
        assert session.history[-1].strategy in ("cache", "cache[disk]")
