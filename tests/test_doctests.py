"""Doctest run over the public surface's docstring examples.

The documentation site renders these docstrings (mkdocstrings), so their
``Examples`` sections are executable documentation — this module runs them
on every CI leg, with either engine and with or without numpy, so an API
drift breaks the build instead of silently rotting the docs.
"""

import doctest
import importlib

import pytest

#: Modules whose docstrings carry runnable examples.  Every entry must
#: actually contain at least one example — an empty doctest run here means
#: the documentation promise was broken.
DOCUMENTED_MODULES = [
    "repro.algebra.columnar",
    "repro.analytics.answer",
    "repro.ingest.stream",
    "repro.olap.cache",
    "repro.olap.maintenance",
    "repro.olap.parallel",
    "repro.olap.planner",
    "repro.olap.session",
    "repro.rdf.graph",
]

_FLAGS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_docstring_examples(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, optionflags=_FLAGS, verbose=False)
    assert results.attempted > 0, f"{module_name} promises examples but has none"
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failure(s)"
