"""PARALLEL (Figure/Table): partitioned evaluation vs. serial as instances grow.

Benchmarks the from-scratch answering of the scaling-slice-dice workload's
generic count query with the serial id-space engine and with the
partitioned executor at 1, 2 and 4 workers (``shard_count = 2 × workers``).
Every parallel run is checked cell-for-cell against the serial answer —
the speedup claim is only meaningful because the cubes are equal.

The ``workers=1`` configuration isolates what sharding itself costs/buys
(range-restricted per-shard evaluation + partial-aggregate merge, no pool);
the multi-worker configurations add the process pool (with its thread
fallback) on top.  Wall-clock speedup beyond the sharding effect requires
real cores; run on a multi-core host for the headline serial-vs-4-worker
ratio, and see ``experiment_parallel_scaling`` for the table-generating
variant that records the host's CPU count.
"""

import pytest

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap.cube import Cube
from repro.olap.parallel import ParallelExecutor

from repro.bench.workloads import SCALES, bench_scale_from_env

SWEEP = [int(value) for value in SCALES[bench_scale_from_env()]["sweep"]]
WORKER_COUNTS = [1, 2, 4]

_CACHE = {}


def _workload(facts: int):
    if facts not in _CACHE:
        config = GenericConfig(
            facts=facts, dimensions=3, values_per_dimension=1.4, measures_per_fact=2.0
        )
        dataset = generic_dataset(config)
        query = generic_query(config, aggregate="count")
        evaluator = AnalyticalQueryEvaluator(dataset.instance)
        oracle = Cube(evaluator.answer(query), query)
        _CACHE[facts] = (dataset, query, evaluator, oracle)
    return _CACHE[facts]


_EXECUTORS = {}


def _executor(facts: int, workers: int) -> ParallelExecutor:
    """One warm executor per (workload, workers): pools persist across rounds."""
    key = (facts, workers)
    if key not in _EXECUTORS:
        dataset, query, _, _ = _workload(facts)
        executor = ParallelExecutor(
            AnalyticalQueryEvaluator(dataset.instance),
            workers=workers,
            shard_count=2 * workers,
        )
        executor.answer(query)  # warm the pool outside the timed region
        _EXECUTORS[key] = executor
    return _EXECUTORS[key]


@pytest.mark.parametrize("facts", SWEEP)
def test_parallel_serial_baseline(benchmark, facts):
    _, query, evaluator, oracle = _workload(facts)
    benchmark.extra_info["facts"] = facts
    benchmark.extra_info["engine"] = "serial"
    answer = benchmark(lambda: evaluator.answer(query))
    assert Cube(answer, query).same_cells(oracle)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("facts", SWEEP)
def test_parallel_workers_scaling(benchmark, facts, workers):
    import os

    _, query, _, oracle = _workload(facts)
    executor = _executor(facts, workers)
    benchmark.extra_info["facts"] = facts
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["shards"] = executor.shard_count
    benchmark.extra_info["cpus"] = os.cpu_count()
    answer = benchmark(lambda: executor.answer(query))
    benchmark.extra_info["backend"] = executor.last_backend
    assert Cube(answer, query).same_cells(oracle)


def test_parallel_executors_shut_down():
    """Not a benchmark: release every pool the parametrized runs created."""
    while _EXECUTORS:
        _, executor = _EXECUTORS.popitem()
        executor.close()
