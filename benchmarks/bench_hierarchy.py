"""HIERARCHY / ENTAILED — lattice reuse and entailment-aware cube costs.

Two experiments over the skewed retail workload
(:mod:`repro.datagen.retail`), scaled by ``REPRO_BENCH_SCALE``:

* **hierarchy** — replays an analyst's drill stream over the geographic /
  product lattice (base → city→region → region→zone → ±category→department,
  with revisits) twice: once on a caching :class:`OLAPSession` whose
  planner may serve coarse cubes from cached finer ones, once answering
  every step from scratch.  Every served cube is checked cell-for-cell
  against from-scratch evaluation of the same rolled query *outside* the
  timed sections, so the reuse session can only win by being fast, never
  by being wrong.  Emits ``BENCH_hierarchy_<scale>.json``.

* **entailed** — prices the two entailment regimes against each other on
  the same instance and query: ``saturate`` (materialize the ρdf closure
  once, then query it) vs ``rewrite`` (expand every BGP into its
  entailment branches per query).  Both must produce identical cubes, and
  both must match a plain session over a pre-saturated graph.  Emits
  ``BENCH_entailed_<scale>.json``.
"""

import time

import pytest

from repro.analytics import AnalyticalQueryEvaluator
from repro.datagen.retail import (
    category_department_hierarchy,
    city_region_hierarchy,
    region_zone_hierarchy,
    revenue_query,
)
from repro.olap import Cube, OLAPSession, RollUp
from repro.rdf.graph import Graph
from repro.rdf.reasoning import saturate

#: How many times the analyst replays the drill stream (revisits are what
#: make materialized lattice levels pay off).
ROUNDS = 3


def _drill_stream(config):
    """The replayed stream: (origin index, operation) per step; origin index
    points into the list of already-produced queries (0 = the base query)."""
    h_city = city_region_hierarchy(config)
    h_region = region_zone_hierarchy(config)
    h_category = category_department_hierarchy(config)
    return [
        (0, RollUp("dcity", h_city)),      # 1: city -> region
        (1, RollUp("dcity", h_region)),    # 2: region -> zone
        (2, RollUp("dcat", h_category)),   # 3: zones x departments
        (0, RollUp("dcat", h_category)),   # 4: a different lattice branch
        (4, RollUp("dcity", h_city)),      # 5: joins branch 4 back up
    ]


@pytest.fixture(scope="module")
def hierarchy_replay(retail_bench_dataset):
    dataset = retail_bench_dataset
    query = revenue_query(dataset.schema)
    stream = _drill_stream(dataset.config)

    # --- reuse session: cache + planner, replayed ROUNDS times -----------
    session = OLAPSession(dataset.instance, dataset.schema)
    reuse_seconds = 0.0
    reuse_cubes = []
    started = time.perf_counter()
    base_cube = session.execute(query)
    reuse_seconds += time.perf_counter() - started
    for _ in range(ROUNDS):
        produced = [query]
        for origin_index, operation in stream:
            started = time.perf_counter()
            cube = session.transform(produced[origin_index], operation)
            reuse_seconds += time.perf_counter() - started
            produced.append(cube.query)
            reuse_cubes.append(cube)

    # Cache-pressure phase: evict the deep lattice levels (as a bounded
    # cache would under pressure), then re-request the deepest cube.  Its
    # origin is gone, so the planner must serve it from the *finer* cached
    # lattice entry — the rollup-from-cached candidate.
    deep_origin_index, deep_operation = stream[-3]
    deep_origin = produced[deep_origin_index]
    deep_query = produced[deep_origin_index + 1]
    session.forget(deep_origin)
    session.forget(deep_query)
    started = time.perf_counter()
    cube = session.transform(deep_origin, deep_operation)
    reuse_seconds += time.perf_counter() - started
    reuse_cubes.append(cube)
    strategies = [record.strategy for record in session.history]

    # --- always-scratch baseline: same stream, no cache ------------------
    evaluator = AnalyticalQueryEvaluator(dataset.instance, engine=session.engine)
    scratch_seconds = 0.0
    scratch_cubes = []
    started = time.perf_counter()
    scratch_base = Cube(evaluator.answer(query), query)
    scratch_seconds += time.perf_counter() - started
    for _ in range(ROUNDS):
        produced = [query]
        for origin_index, operation in stream:
            transformed = operation.apply(produced[origin_index])
            started = time.perf_counter()
            answer = evaluator.answer(transformed)
            scratch_seconds += time.perf_counter() - started
            produced.append(transformed)
            scratch_cubes.append(Cube(answer, transformed))
    # The re-request after eviction costs the baseline a full evaluation.
    deep_transformed = deep_operation.apply(produced[deep_origin_index])
    started = time.perf_counter()
    answer = evaluator.answer(deep_transformed)
    scratch_seconds += time.perf_counter() - started
    scratch_cubes.append(Cube(answer, deep_transformed))

    # --- differential check, outside every timed section ------------------
    assert base_cube.same_cells(scratch_base)
    verified = 0
    for served, oracle in zip(reuse_cubes, scratch_cubes):
        assert served.query.name == oracle.query.name
        assert served.same_cells(oracle), served.query.name
        verified += 1

    return {
        "steps": len(reuse_cubes),
        "verified": verified,
        "reuse_seconds": reuse_seconds,
        "scratch_seconds": scratch_seconds,
        "strategies": strategies,
    }


def test_hierarchy_lattice_reuse_beats_scratch(hierarchy_replay, bench_record_writer, retail_bench_dataset):
    run = hierarchy_replay
    # Cube-equal per step (the fixture already asserted cell equality).
    assert run["verified"] == run["steps"]
    # The replayed lattice stream must actually reuse cached state...
    reused = [
        strategy
        for strategy in run["strategies"]
        if strategy.startswith("plan[rewrite[")
        or strategy.startswith("plan[rollup-from-cached")
        or strategy.startswith("plan[cached")
        or strategy.startswith("plan[compat[")
    ]
    assert reused, run["strategies"]
    # The eviction re-request exercised the lattice candidate specifically.
    assert "plan[rollup-from-cached]" in run["strategies"]
    # ...and beat answering every step from scratch.
    assert run["reuse_seconds"] < run["scratch_seconds"], run
    strategy_mix = {}
    for strategy in run["strategies"]:
        strategy_mix[strategy] = strategy_mix.get(strategy, 0) + 1
    bench_record_writer(
        "hierarchy",
        {
            "reuse_wall_s": run["reuse_seconds"],
            "scratch_wall_s": run["scratch_seconds"],
        },
        {
            "sales": retail_bench_dataset.config.sales,
            "instance_triples": len(retail_bench_dataset.instance),
            "rounds": ROUNDS,
            "steps": run["steps"],
            "verified": run["verified"],
            "speedup": run["scratch_seconds"] / max(run["reuse_seconds"], 1e-9),
            "strategy_mix": strategy_mix,
        },
    )


@pytest.fixture(scope="module")
def entailed_runs(retail_bench_dataset):
    dataset = retail_bench_dataset
    query = revenue_query(dataset.schema)

    runs = {}
    for mode in ("saturate", "rewrite"):
        started = time.perf_counter()
        session = OLAPSession(dataset.instance, dataset.schema, entailment=mode)
        setup_seconds = time.perf_counter() - started
        started = time.perf_counter()
        cold = session.execute(query)
        query_seconds = time.perf_counter() - started
        started = time.perf_counter()
        warm = session.execute(query)
        warm_seconds = time.perf_counter() - started
        assert cold.same_cells(warm)
        runs[mode] = {
            "setup_seconds": setup_seconds,
            "query_seconds": query_seconds,
            "warm_seconds": warm_seconds,
            "cube": cold,
            "strategies": [record.strategy for record in session.history],
        }

    # Oracle: a plain session over the pre-saturated graph.
    closure = Graph(name="retail+closure")
    closure.add_all(dataset.instance)
    saturate(closure, in_place=True)
    oracle = OLAPSession(closure).execute(query)
    runs["oracle_cube"] = oracle
    runs["closure_triples"] = len(closure)
    return runs


def test_entailed_modes_agree_and_report(entailed_runs, bench_record_writer, retail_bench_dataset):
    saturate_run = entailed_runs["saturate"]
    rewrite_run = entailed_runs["rewrite"]
    # The three-way differential: saturate == rewrite == pre-saturated scratch.
    assert saturate_run["cube"].same_cells(rewrite_run["cube"])
    assert saturate_run["cube"].same_cells(entailed_runs["oracle_cube"])
    # Plans name what "scratch" means per mode.
    assert any("scratch[saturate]" in s for s in saturate_run["strategies"])
    assert any("scratch[rewrite]" in s for s in rewrite_run["strategies"])
    bench_record_writer(
        "entailed",
        {
            "saturate_setup_s": saturate_run["setup_seconds"],
            "saturate_query_s": saturate_run["query_seconds"],
            "saturate_warm_s": saturate_run["warm_seconds"],
            "rewrite_setup_s": rewrite_run["setup_seconds"],
            "rewrite_query_s": rewrite_run["query_seconds"],
            "rewrite_warm_s": rewrite_run["warm_seconds"],
        },
        {
            "sales": retail_bench_dataset.config.sales,
            "instance_triples": len(retail_bench_dataset.instance),
            "closure_triples": entailed_runs["closure_triples"],
            "entailed_cells": len(saturate_run["cube"].cells()),
            "saturate_strategies": saturate_run["strategies"],
            "rewrite_strategies": rewrite_run["strategies"],
        },
    )
