"""REFRESH — incremental cube maintenance vs. recompute under updates.

The PR-3 claim: when the instance changes by a *small* batch of triples,
patching cached ``pres(Q)``/``ans(Q)`` from the graph's change log beats
re-answering from scratch by a wide margin — the work scales with the
delta, not the instance.  These benchmarks warm a planner session with the
replayed operation chains of ``bench_planner_sessions``, apply an update
batch of a given size, and time the post-update re-answering phase under
two policies:

* ``refresh``   — the warmed session keeps serving; stale results are
  delta-patched (or rewritten from patched origins), falling back to
  scratch only where the planner prices it cheaper;
* ``replan``    — a cold planner session on the updated instance: what
  invalidation-only caching *with* the PR-2 planner must do (recompute the
  root once, then rewrite/reuse from its own fresh results);
* ``recompute`` — a cold session answering every operation from scratch on
  the updated instance (no reuse at all).

The headline ≥3x is against ``recompute``; ``replan`` is the tougher,
honest baseline (it recomputes the root only once) and is benchmarked side
by side.  Every benchmark replay is checked cell-for-cell against
from-scratch evaluation, so no policy can win by answering wrongly.
"""

import pytest

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.bench.workloads import (
    bench_scale_from_env,
    blogger_session_replay,
    blogger_update_batch,
    replay_after_update,
    video_session_replay,
    video_update_batch,
)
from repro.olap.cube import Cube

#: Update-batch sizes exercised, as fractions of the instance's triples.
FRACTIONS = (0.005, 0.01, 0.05)


@pytest.fixture(scope="module")
def blogger_replay(blogger_bench_dataset):
    root_query, steps = blogger_session_replay(blogger_bench_dataset)
    return blogger_bench_dataset, root_query, steps


@pytest.fixture(scope="module")
def video_replay(video_bench_dataset):
    root_query, steps = video_session_replay(video_bench_dataset)
    return video_bench_dataset, root_query, steps


def _update(batch, dataset, fraction):
    size = max(1, int(len(dataset.instance) * fraction))
    return lambda instance: batch(instance, size, seed=17)


def _run(dataset, root_query, steps, update, policy):
    instance = dataset.instance.copy()
    elapsed, cubes, session = replay_after_update(
        instance, dataset.schema, root_query, steps, update, policy
    )
    return instance, cubes, session


def _check(instance, cubes):
    evaluator = AnalyticalQueryEvaluator(instance)
    for cube in cubes:
        assert cube.same_cells(Cube(evaluator.answer(cube.query), cube.query))


# --- timed replays -----------------------------------------------------------


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("policy", ["refresh", "replan", "recompute"])
def test_blogger_refresh(benchmark, blogger_replay, policy, fraction):
    dataset, root_query, steps = blogger_replay
    update = _update(blogger_update_batch, dataset, fraction)
    instance, cubes, _ = benchmark(
        lambda: _run(dataset, root_query, steps, update, policy)
    )
    _check(instance, cubes)


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("policy", ["refresh", "replan", "recompute"])
def test_video_refresh(benchmark, video_replay, policy, fraction):
    dataset, root_query, steps = video_replay
    update = _update(video_update_batch, dataset, fraction)
    instance, cubes, _ = benchmark(
        lambda: _run(dataset, root_query, steps, update, policy)
    )
    _check(instance, cubes)


# --- the refresh win, asserted -----------------------------------------------


def _replay_timings(blogger_replay, engine):
    import time

    dataset, root_query, steps = blogger_replay
    update = _update(blogger_update_batch, dataset, 0.005)
    timings = {}
    for policy in ("refresh", "recompute"):
        best = float("inf")
        for _ in range(3):
            instance = dataset.instance.copy()
            elapsed, cubes, session = replay_after_update(
                instance, dataset.schema, root_query, steps, update, policy,
                engine=engine,
            )
            best = min(best, elapsed)
        timings[policy] = best
        _check(instance, cubes)
        if policy == "refresh":
            assert session.cache.stats.refreshes > 0, (
                "the refresh policy never exercised the delta-patching path"
            )
    return timings


def test_small_batch_refresh_beats_recompute(blogger_replay):
    """Small batches (≤1%% of triples): refresh ≥3x faster than recompute.

    Best-of-3 timings on the blogger 12-op dashboard session with a 0.5%%
    update batch, on the **row engine** — the engine this margin was
    measured on (delta patching is row-level work, so the columnar
    engine's vectorized recomputation compresses the gap; see
    ``test_small_batch_refresh_never_loses_on_columnar``).  At the
    ``tiny`` CI smoke scale the instance is so small that from-scratch
    evaluation is nearly free, so the bar is lowered to 2x there; at
    ``small`` (the default) and above the 3x claim is enforced as stated.
    """
    timings = _replay_timings(blogger_replay, engine="rows")
    threshold = 2.0 if bench_scale_from_env() == "tiny" else 3.0
    speedup = timings["recompute"] / timings["refresh"]
    assert speedup >= threshold, (
        f"refresh replay only {speedup:.2f}x faster than recompute "
        f"(refresh {timings['refresh'] * 1000:.1f} ms, "
        f"recompute {timings['recompute'] * 1000:.1f} ms)"
    )


def test_small_batch_refresh_stays_competitive_on_columnar(blogger_replay):
    """On the columnar engine the refresh margin shrinks — vectorized
    recomputation is what compressed it — but patching a warmed session
    must not become a *multiple* slower than cold recomputation on a
    small batch.  The timing bar is deliberately loose (0.5x): both
    replays take a few milliseconds here and CI runners are noisy; what
    this test pins hard is that the delta-patching path runs and the
    cubes are exact (``_replay_timings`` asserts both).  The planner's
    per-engine multiplier is what arbitrates the close calls per
    operation at run time."""
    pytest.importorskip("numpy")
    timings = _replay_timings(blogger_replay, engine="columnar")
    speedup = timings["recompute"] / timings["refresh"]
    assert speedup >= 0.5, (
        f"columnar refresh replay {speedup:.2f}x vs recompute "
        f"(refresh {timings['refresh'] * 1000:.1f} ms, "
        f"recompute {timings['recompute'] * 1000:.1f} ms)"
    )
