"""EXP-8 (ablation): cost of materializing pres(Q), ans(Q) and int(Q).

The paper's approach assumes pres(Q) is materialized "as part of the effort
for evaluating Q"; this benchmark quantifies that overhead by timing the
three materialization levels separately, plus the full evaluate() call that
produces answer + partial together.  The companion size measurements (rows
of each structure vs. instance triples) are reported by
``experiment_pres_storage`` and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.analytics import AnalyticalQueryEvaluator
from repro.bench.workloads import SCALES, bench_scale_from_env
from repro.datagen.generic import GenericConfig, generic_dataset

_STATE = {}


def _prepared():
    if not _STATE:
        parameters = SCALES[bench_scale_from_env()]
        config = GenericConfig(
            facts=int(parameters["facts"]), dimensions=3, values_per_dimension=1.4
        )
        dataset = generic_dataset(config)
        _STATE["evaluator"] = AnalyticalQueryEvaluator(dataset.instance)
        _STATE["query"] = dataset.query
        _STATE["instance_size"] = len(dataset.instance)
    return _STATE["evaluator"], _STATE["query"], _STATE["instance_size"]


def test_materialize_answer_only(benchmark):
    evaluator, query, size = _prepared()
    benchmark.extra_info["instance_triples"] = size
    result = benchmark(lambda: evaluator.answer(query))
    assert len(result) > 0


def test_materialize_partial_result(benchmark):
    evaluator, query, size = _prepared()
    benchmark.extra_info["instance_triples"] = size
    result = benchmark(lambda: evaluator.partial_result(query))
    assert len(result) > 0


def test_materialize_answer_and_partial(benchmark):
    evaluator, query, size = _prepared()
    benchmark.extra_info["instance_triples"] = size
    result = benchmark(lambda: evaluator.evaluate(query, materialize_partial=True))
    assert result.has_partial()


def test_materialize_intermediary_result(benchmark):
    evaluator, query, size = _prepared()
    benchmark.extra_info["instance_triples"] = size
    result = benchmark(lambda: evaluator.intermediary_result(query))
    assert len(result) > 0
