"""PLANNER — replayed multi-operation OLAP sessions, per answering policy.

The paper's experiments measure *streams* of OLAP operations, not single
calls.  These benchmarks replay two fixed operation chains — a 12-operation
dashboard-style session on the blogger cube and a 10-operation drill chain
on the video cube, both with ~half the operations repeated later in the
chain — under three session policies:

* ``plan``    — the cost-based planner (cache hits, rewritings, compatible
  cached views or scratch, whichever is estimated cheapest per operation);
* ``scratch`` — always re-evaluate the transformed query on the instance;
* ``rewrite`` — always apply the paper's rewriting algorithms.

The claim (shape): the planner beats always-scratch by a wide margin (it
reuses materialized results) and beats always-reuse too (repeated
operations become cache hits instead of re-executed rewritings).  Every
replay is also checked cell-for-cell against from-scratch evaluation, so a
policy can never win by answering wrongly.
"""

import pytest

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.bench.workloads import (
    blogger_session_replay,
    replay_session,
    video_session_replay,
)
from repro.olap.cube import Cube


@pytest.fixture(scope="module")
def blogger_replay(blogger_bench_dataset):
    root_query, steps = blogger_session_replay(blogger_bench_dataset)
    return blogger_bench_dataset, root_query, steps


@pytest.fixture(scope="module")
def video_replay(video_bench_dataset):
    root_query, steps = video_session_replay(video_bench_dataset)
    return video_bench_dataset, root_query, steps


def _replay(dataset, root_query, steps, strategy):
    elapsed, cubes, session = replay_session(
        dataset.instance, dataset.schema, root_query, steps, strategy
    )
    return cubes, session


def _check_cubes(dataset, cubes):
    evaluator = AnalyticalQueryEvaluator(dataset.instance)
    for cube in cubes:
        assert cube.same_cells(Cube(evaluator.answer(cube.query), cube.query))


# --- blogger dashboard session ----------------------------------------------


@pytest.mark.parametrize("strategy", ["plan", "scratch", "rewrite"])
def test_blogger_session(benchmark, blogger_replay, strategy):
    dataset, root_query, steps = blogger_replay
    cubes, _ = benchmark(lambda: _replay(dataset, root_query, steps, strategy))
    _check_cubes(dataset, cubes)


# --- video drill-navigation session -----------------------------------------


@pytest.mark.parametrize("strategy", ["plan", "scratch", "rewrite"])
def test_video_session(benchmark, video_replay, strategy):
    dataset, root_query, steps = video_replay
    cubes, _ = benchmark(lambda: _replay(dataset, root_query, steps, strategy))
    _check_cubes(dataset, cubes)


# --- the planner's win, asserted --------------------------------------------


def test_planner_beats_both_baselines(blogger_bench_dataset, video_bench_dataset):
    """Best-of-3 replay times: plan < scratch and plan < rewrite somewhere.

    The planner must beat the always-from-scratch baseline on at least one
    replayed session and the always-reuse baseline on at least one replayed
    session (cube equality is enforced for every step of every replay by
    the benchmarks above and by replay_session's per-step cubes here).
    """
    timings = {}
    for label, dataset, build in (
        ("blogger", blogger_bench_dataset, blogger_session_replay),
        ("video", video_bench_dataset, video_session_replay),
    ):
        root_query, steps = build(dataset)
        evaluator = AnalyticalQueryEvaluator(dataset.instance)
        for strategy in ("plan", "scratch", "rewrite"):
            best = float("inf")
            for _ in range(3):
                elapsed, cubes, _ = replay_session(
                    dataset.instance, dataset.schema, root_query, steps, strategy
                )
                best = min(best, elapsed)
            for cube in cubes:
                assert cube.same_cells(Cube(evaluator.answer(cube.query), cube.query))
            timings[(label, strategy)] = best

    beats_scratch = [
        label
        for label in ("blogger", "video")
        if timings[(label, "plan")] < timings[(label, "scratch")]
    ]
    beats_rewrite = [
        label
        for label in ("blogger", "video")
        if timings[(label, "plan")] < timings[(label, "rewrite")]
    ]
    assert beats_scratch, f"planner never beat always-scratch: {timings}"
    assert beats_rewrite, f"planner never beat always-reuse: {timings}"
