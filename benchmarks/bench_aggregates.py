"""EXP-9 (ablation): DRILL-OUT rewriting under different aggregation functions.

Distributive aggregates (count, sum, min, max) and the non-distributive avg
all go through Algorithm 1 (which recomputes the aggregate from pres(Q), so
distributivity affects only the cheaper — and incorrect for RDF — ans(Q)
shortcut that the library refuses for avg).  Expected shape: rewriting times
are close to one another across aggregates, and all beat scratch.
"""

import pytest

from repro.analytics import AnalyticalQuery
from repro.bench.workloads import SCALES, bench_scale_from_env
from repro.datagen.blogger import BloggerConfig, blogger_dataset, words_per_blogger_query
from repro.olap import DrillOut, OLAPSession
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.rewriting import drill_out_from_partial

AGGREGATES = ["count", "sum", "avg", "min", "max"]

_STATE = {}


def _prepared(aggregate: str):
    if not _STATE:
        parameters = SCALES[bench_scale_from_env()]
        _STATE["dataset"] = blogger_dataset(BloggerConfig(bloggers=int(parameters["bloggers"])))
        _STATE["sessions"] = {}
    dataset = _STATE["dataset"]
    if aggregate not in _STATE["sessions"]:
        base = words_per_blogger_query(dataset.schema)
        query = AnalyticalQuery(
            base.classifier, base.measure, aggregate, schema=dataset.schema, name=f"Q_{aggregate}"
        )
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(query)
        _STATE["sessions"][aggregate] = (session, query)
    return _STATE["sessions"][aggregate]


@pytest.mark.parametrize("aggregate", AGGREGATES)
def test_drill_out_rewrite_by_aggregate(benchmark, aggregate):
    session, query = _prepared(aggregate)
    operation = DrillOut("dage")
    transformed = operation.apply(query)
    partial = session.materialized(query).partial
    benchmark.extra_info["aggregate"] = aggregate
    result = benchmark(lambda: drill_out_from_partial(partial, query, transformed))
    assert len(result) > 0


@pytest.mark.parametrize("aggregate", AGGREGATES)
def test_drill_out_scratch_by_aggregate(benchmark, aggregate):
    session, query = _prepared(aggregate)
    operation = DrillOut("dage")
    transformed = operation.apply(query)
    benchmark.extra_info["aggregate"] = aggregate
    result = benchmark(
        lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed)
    )
    assert len(result) > 0
