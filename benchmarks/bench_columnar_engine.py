"""Columnar vs. row engine on the scaling slice-dice workload.

The same generic datasets and operations as ``bench_scaling_slice_dice``,
but comparing the two execution engines on the *from-scratch* path — the
cost the columnar kernels attack.  Every measured pair also asserts
``Cube.same_cells`` equality between the engines, and
``test_columnar_speedup_at_largest_size`` enforces the acceptance bar: at
the largest sweep size the columnar engine must answer the slice-dice
operations at least 3x faster than the row engine.

Run with ``REPRO_BENCH_SCALE=small|paper`` for larger sweeps (default
small; the speedup grows with instance size — vectorization amortizes its
fixed per-operator overhead).
"""

import time

import pytest

np = pytest.importorskip("numpy")

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap import Dice, OLAPSession, Slice
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.cube import Cube

from repro.bench.workloads import SCALES, bench_scale_from_env

SWEEP = [int(value) for value in SCALES[bench_scale_from_env()]["sweep"]]

#: The acceptance bar only applies at sizes where vectorization has data to
#: amortize over; below this the assertion degrades to "not slower".
SPEEDUP_FLOOR_FACTS = 1000
SPEEDUP_FLOOR = 3.0


def _prepared(facts: int):
    config = GenericConfig(
        facts=facts, dimensions=3, values_per_dimension=1.4, measures_per_fact=2.0
    )
    dataset = generic_dataset(config)
    session = OLAPSession(dataset.instance, dataset.schema)
    query = generic_query(config, aggregate="count")
    session.execute(query)
    return session, query


_CACHE = {}


def _session_for(facts: int):
    if facts not in _CACHE:
        session, query = _prepared(facts)
        engines = {
            engine: AnalyticalQueryEvaluator(session.instance, engine=engine)
            for engine in ("rows", "columnar")
        }
        _CACHE[facts] = (session, query, engines)
    return _CACHE[facts]


def _slice_operation(session, query):
    answer = session.materialized(query).answer
    value = sorted(answer.relation.distinct_values(query.dimension_names[0]), key=repr)[0]
    return Slice(query.dimension_names[0], value)


def _dice_operation(session, query):
    answer = session.materialized(query).answer
    first = sorted(answer.relation.distinct_values(query.dimension_names[0]), key=repr)[:5]
    second = sorted(answer.relation.distinct_values(query.dimension_names[1]), key=repr)[:5]
    return Dice({query.dimension_names[0]: first, query.dimension_names[1]: second})


def _assert_engines_equal(engines, query, operation):
    transformed = operation.apply(query)
    cubes = {
        engine: Cube(
            transformed_answer_from_scratch(evaluator, query, operation, transformed),
            transformed,
        )
        for engine, evaluator in engines.items()
    }
    assert cubes["columnar"].same_cells(cubes["rows"])


@pytest.mark.parametrize("facts", SWEEP)
@pytest.mark.parametrize("engine", ["rows", "columnar"])
def test_slice_scratch_by_engine(benchmark, facts, engine):
    session, query, engines = _session_for(facts)
    operation = _slice_operation(session, query)
    transformed = operation.apply(query)
    evaluator = engines[engine]
    benchmark.extra_info["facts"] = facts
    benchmark.extra_info["engine"] = engine
    benchmark(
        lambda: transformed_answer_from_scratch(evaluator, query, operation, transformed)
    )
    _assert_engines_equal(engines, query, operation)


@pytest.mark.parametrize("facts", SWEEP)
@pytest.mark.parametrize("engine", ["rows", "columnar"])
def test_dice_scratch_by_engine(benchmark, facts, engine):
    session, query, engines = _session_for(facts)
    operation = _dice_operation(session, query)
    transformed = operation.apply(query)
    evaluator = engines[engine]
    benchmark.extra_info["facts"] = facts
    benchmark.extra_info["engine"] = engine
    benchmark(
        lambda: transformed_answer_from_scratch(evaluator, query, operation, transformed)
    )
    _assert_engines_equal(engines, query, operation)


def _best_of(callable_, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_columnar_speedup_at_largest_size():
    """The acceptance bar: >=3x at the largest scaling slice-dice size.

    Both engines answer the SLICE and the DICE from scratch; the summed
    best-of-five times must show the columnar engine >=3x faster (cube
    equality asserted first, so the speedup is never bought with wrong
    cells).  Below ``SPEEDUP_FLOOR_FACTS`` (the tiny CI scale) the bar
    relaxes to "not slower" — fixed per-operator overheads dominate there.
    """
    facts = max(SWEEP)
    session, query, engines = _session_for(facts)
    operations = [_slice_operation(session, query), _dice_operation(session, query)]
    for operation in operations:
        _assert_engines_equal(engines, query, operation)

    totals = {}
    for engine, evaluator in engines.items():
        def run_all(evaluator=evaluator):
            for operation in operations:
                transformed = operation.apply(query)
                transformed_answer_from_scratch(evaluator, query, operation, transformed)

        run_all()  # warm-up: statistics + (for columnar) the triple index
        totals[engine] = _best_of(run_all)

    speedup = totals["rows"] / totals["columnar"]
    floor = SPEEDUP_FLOOR if facts >= SPEEDUP_FLOOR_FACTS else 1.0
    assert speedup >= floor, (
        f"columnar speedup {speedup:.2f}x below the {floor}x bar at {facts} facts "
        f"(rows {totals['rows'] * 1000:.2f} ms, columnar {totals['columnar'] * 1000:.2f} ms)"
    )
