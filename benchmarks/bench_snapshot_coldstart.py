"""STORAGE: session cold-start and parallel dispatch, heap vs snapshot.

Two questions, both with cube-equality checks against the heap-backed path:

1. **Cold start** — how long until a session can answer its first query,
   starting from (a) the Turtle source (parse + encode), (b) a snapshot
   decoded onto the heap (``mmap=False``), and (c) a memory-mapped snapshot
   (``mmap=True``, the out-of-core path: only the header is read eagerly)?
   The mmap open is O(header), so its advantage *grows* with instance
   size; the acceptance bar is ≥10× over parse-from-source at the default
   scale.

2. **Dispatch overhead** — what does the process pool's initializer ship
   at shard counts {1, 3, 7}: the whole pickled graph (heap instance) or
   just a path (snapshot-mmap attach)?  The initializer payload size is
   the deterministic O(instance)-vs-O(1) witness; pool-build + first
   dispatch wall times are recorded alongside.

Both halves emit machine-readable ``BENCH_*.json`` run records through
:func:`repro.bench.reporting.write_bench_record` (see the
``bench_record_writer`` fixture), even when pytest-benchmark timing is
disabled (``--benchmark-disable``), so CI smoke runs leave records behind.
"""

import os
import pickle

import pytest

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.bench.harness import time_callable
from repro.bench.workloads import SCALES, bench_scale_from_env
from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap.cube import Cube
from repro.olap.parallel import ParallelExecutor
from repro.rdf.turtle import parse_turtle, serialize_turtle
from repro.storage import load_snapshot, save_snapshot

SCALE = bench_scale_from_env()
FACTS = int(SCALES[SCALE]["facts"])
REPEATS = int(SCALES[SCALE]["repeats"])
SHARD_COUNTS = [1, 3, 7]

_CACHE = {}


def _workload(tmp_path_factory):
    """Dataset, query, oracle, Turtle text and snapshot path — built once."""
    if "workload" not in _CACHE:
        config = GenericConfig(
            facts=FACTS, dimensions=3, values_per_dimension=1.4, measures_per_fact=2.0
        )
        dataset = generic_dataset(config)
        query = generic_query(config, aggregate="count")
        oracle = Cube(AnalyticalQueryEvaluator(dataset.instance).answer(query), query)
        turtle_text = serialize_turtle(dataset.instance)
        snapshot_path = str(
            tmp_path_factory.mktemp("snapshots") / f"generic_{FACTS}.snap"
        )
        save_snapshot(dataset.instance, snapshot_path)
        _CACHE["workload"] = (dataset, query, oracle, turtle_text, snapshot_path)
    return _CACHE["workload"]


def _first_answer(graph, query):
    """Evaluator build + first answer: the end of a session's cold start."""
    return AnalyticalQueryEvaluator(graph).answer(query)


# ---------------------------------------------------------------------------
# cold start: parse-from-Turtle vs snapshot-heap vs snapshot-mmap
# ---------------------------------------------------------------------------


def test_coldstart_parse_turtle(benchmark, tmp_path_factory):
    _, query, oracle, turtle_text, _ = _workload(tmp_path_factory)
    benchmark.extra_info["facts"] = FACTS
    benchmark.extra_info["source"] = "turtle"
    answer = benchmark(lambda: _first_answer(parse_turtle(turtle_text), query))
    assert Cube(answer, query).same_cells(oracle)


def test_coldstart_snapshot_heap(benchmark, tmp_path_factory):
    _, query, oracle, _, snapshot_path = _workload(tmp_path_factory)
    benchmark.extra_info["facts"] = FACTS
    benchmark.extra_info["source"] = "snapshot-heap"
    answer = benchmark(
        lambda: _first_answer(load_snapshot(snapshot_path, mmap=False), query)
    )
    assert Cube(answer, query).same_cells(oracle)


def test_coldstart_snapshot_mmap(benchmark, tmp_path_factory):
    _, query, oracle, _, snapshot_path = _workload(tmp_path_factory)
    benchmark.extra_info["facts"] = FACTS
    benchmark.extra_info["source"] = "snapshot-mmap"
    answer = benchmark(
        lambda: _first_answer(load_snapshot(snapshot_path, mmap=True), query)
    )
    assert Cube(answer, query).same_cells(oracle)


def test_coldstart_record(bench_record_writer, tmp_path_factory):
    """Measure the three cold starts, emit the BENCH record, hold the ≥10× bar.

    Runs its own :func:`~repro.bench.harness.time_callable` timing loop so
    the record exists even under ``--benchmark-disable`` (the CI smoke
    configuration).  The pure *open* time of the mmap path (no query) is
    recorded too — that is the out-of-core headline: O(header), not
    O(instance).
    """
    dataset, query, oracle, turtle_text, snapshot_path = _workload(tmp_path_factory)

    parse = time_callable(
        "parse-turtle", lambda: _first_answer(parse_turtle(turtle_text), query),
        repeats=REPEATS,
    )
    heap = time_callable(
        "snapshot-heap",
        lambda: _first_answer(load_snapshot(snapshot_path, mmap=False), query),
        repeats=REPEATS,
    )
    mmap = time_callable(
        "snapshot-mmap",
        lambda: _first_answer(load_snapshot(snapshot_path, mmap=True), query),
        repeats=REPEATS,
    )
    open_only = time_callable(
        "snapshot-mmap-open", lambda: len(load_snapshot(snapshot_path, mmap=True)),
        repeats=REPEATS,
    )

    for source in (False, True):
        answer = _first_answer(load_snapshot(snapshot_path, mmap=source), query)
        assert Cube(answer, query).same_cells(oracle)

    speedup_mmap = parse.best / mmap.best if mmap.best else float("inf")
    speedup_heap = parse.best / heap.best if heap.best else float("inf")
    bench_record_writer(
        "snapshot_coldstart",
        {
            "parse_turtle_s": parse.best,
            "snapshot_heap_s": heap.best,
            "snapshot_mmap_s": mmap.best,
            "snapshot_mmap_open_s": open_only.best,
        },
        {
            "facts": FACTS,
            "triples": len(dataset.instance),
            "snapshot_bytes": os.path.getsize(snapshot_path),
            "speedup_mmap_vs_parse": round(speedup_mmap, 2),
            "speedup_heap_vs_parse": round(speedup_heap, 2),
            "repeats": REPEATS,
        },
    )
    # The acceptance bar: mmap cold start ≥10× faster than parse-from-source.
    assert speedup_mmap >= 10.0, (
        f"snapshot-mmap cold start only {speedup_mmap:.1f}x faster than "
        f"parse-from-Turtle (parse {parse.best:.4f}s, mmap {mmap.best:.4f}s)"
    )


# ---------------------------------------------------------------------------
# parallel dispatch overhead: pickled-graph vs snapshot-mmap attach
# ---------------------------------------------------------------------------


def _pool_build_and_dispatch(graph, query, shard_count):
    """Cold pool build + one dispatch (the per-session dispatch tax)."""
    executor = ParallelExecutor(
        AnalyticalQueryEvaluator(graph),
        workers=2,
        shard_count=shard_count,
        backend="process",
    )
    try:
        return executor.answer(query), executor.last_backend, executor.attach_mode
    finally:
        executor.close()


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_dispatch_pickled_graph(benchmark, tmp_path_factory, shard_count):
    dataset, query, oracle, _, _ = _workload(tmp_path_factory)
    benchmark.extra_info["shards"] = shard_count
    benchmark.extra_info["attach"] = "pickled-graph"
    answer, backend, attach = benchmark(
        lambda: _pool_build_and_dispatch(dataset.instance, query, shard_count)
    )
    benchmark.extra_info["backend"] = backend
    assert attach == "pickled-graph"
    assert Cube(answer, query).same_cells(oracle)


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_dispatch_mmap_attach(benchmark, tmp_path_factory, shard_count):
    _, query, oracle, _, snapshot_path = _workload(tmp_path_factory)
    mapped = load_snapshot(snapshot_path, mmap=True)
    benchmark.extra_info["shards"] = shard_count
    benchmark.extra_info["attach"] = "snapshot-mmap"
    answer, backend, attach = benchmark(
        lambda: _pool_build_and_dispatch(mapped, query, shard_count)
    )
    benchmark.extra_info["backend"] = backend
    assert attach == "snapshot-mmap"
    assert Cube(answer, query).same_cells(oracle)


def test_dispatch_record(bench_record_writer, tmp_path_factory):
    """Emit the dispatch-overhead BENCH record and hold the O(1) payload bar.

    The deterministic witness that mmap attach is O(1): the pool
    initializer's pickled payload is the snapshot *path* (bytes, constant)
    for a mapped graph versus the whole *graph* (O(instance)) for a heap
    one.  Wall times for pool build + first dispatch at each shard count
    are recorded alongside; cube equality is asserted for every cell.
    """
    dataset, query, oracle, _, snapshot_path = _workload(tmp_path_factory)
    mapped = load_snapshot(snapshot_path, mmap=True)

    pickled_payload = len(pickle.dumps(dataset.instance))
    mmap_payload = len(pickle.dumps(mapped))
    measurements = {}
    backends = {}
    for shard_count in SHARD_COUNTS:
        timing = time_callable(
            f"pickled-{shard_count}",
            lambda n=shard_count: _pool_build_and_dispatch(dataset.instance, query, n),
            repeats=1,
            warmup=0,
        )
        measurements[f"pickled_graph_shards{shard_count}_s"] = timing.best
        timing = time_callable(
            f"mmap-{shard_count}",
            lambda n=shard_count: _pool_build_and_dispatch(mapped, query, n),
            repeats=1,
            warmup=0,
        )
        measurements[f"mmap_attach_shards{shard_count}_s"] = timing.best

    answer, backend, attach = _pool_build_and_dispatch(mapped, query, 3)
    assert attach == "snapshot-mmap"
    assert Cube(answer, query).same_cells(oracle)
    backends["mmap"] = backend

    bench_record_writer(
        "snapshot_dispatch",
        measurements,
        {
            "facts": FACTS,
            "triples": len(dataset.instance),
            "workers": 2,
            "shard_counts": SHARD_COUNTS,
            "initializer_payload_pickled_graph_bytes": pickled_payload,
            "initializer_payload_mmap_attach_bytes": mmap_payload,
            "payload_ratio": round(pickled_payload / max(mmap_payload, 1), 1),
            "backends": backends,
        },
    )
    # O(instance) vs O(1): the mmap attach payload is a path, not a graph.
    assert mmap_payload < 1024, (
        f"mmap attach initializer payload is {mmap_payload} bytes — "
        f"expected a near-constant path-sized payload"
    )
    assert pickled_payload > 10 * mmap_payload
