"""ADVISOR — profile → recommend → replay, vs. the static cold planner.

Replays the blogger 12-op dashboard chain and the video 10-op drill chain
twice each:

* **static** — a cold session with the hand-set cost constants (the PR-2
  planner exactly);
* **advised** — a fresh session warm-started by the recommendations mined
  from a profile pass (:meth:`OLAPSession.apply_recommendations`) and
  planned with the cost model fitted from that pass's observed runtimes.

The claim (shape): the advised replay touches fewer rows AND finishes
faster — the warm start turns first accesses into cache hits, and the
fitted model keeps ranking reuse candidates correctly.  Every step of
every replay is checked cell-for-cell against from-scratch evaluation, so
the advisor can never win by answering wrongly.  Each run also emits a
``BENCH_advisor_<workload>_<scale>.json`` record with both timings, the
rows-touched totals and the fitted model's family scales.
"""

import pytest

from repro.bench.workloads import (
    advisor_session_comparison,
    blogger_session_replay,
    replay_on_session,
    video_session_replay,
)
from repro.olap import OLAPSession


@pytest.fixture(scope="module")
def blogger_comparison(blogger_bench_dataset):
    return blogger_bench_dataset, advisor_session_comparison(
        blogger_bench_dataset, blogger_session_replay
    )


@pytest.fixture(scope="module")
def video_comparison(video_bench_dataset):
    return video_bench_dataset, advisor_session_comparison(
        video_bench_dataset, video_session_replay
    )


def _record(results):
    measurements = {
        "static_replay_s": results["static_seconds"],
        "advised_replay_s": results["advised_seconds"],
    }
    metadata = {
        "ops": results["ops"],
        "static_rows_touched": results["static_rows"],
        "advised_rows_touched": results["advised_rows"],
        "static_cache_hits": results["static_hits"],
        "advised_cache_hits": results["advised_hits"],
        "recommendations": results["recommendations"],
        "cost_model": results["report"].cost_model.as_dict(),
        "speedup": (
            results["static_seconds"] / results["advised_seconds"]
            if results["advised_seconds"] > 0
            else float("inf")
        ),
        "all_equal": results["static_equal"] and results["advised_equal"],
    }
    return measurements, metadata


def _check(results):
    assert results["profile_equal"], "profile pass produced a wrong cube"
    assert results["static_equal"], "static replay produced a wrong cube"
    assert results["advised_equal"], "advised replay produced a wrong cube"
    assert results["recommendations"] > 0, "advisor produced an empty report"
    assert results["report"].cost_model.source == "fitted"
    assert results["advised_rows"] < results["static_rows"], (
        f"advised replay touched {results['advised_rows']} rows, "
        f"static touched {results['static_rows']}"
    )


# --- blogger dashboard session ----------------------------------------------


def test_blogger_advised_replay(benchmark, blogger_comparison, bench_record_writer):
    dataset, results = blogger_comparison
    report = results["report"]
    root_query, steps = blogger_session_replay(dataset)

    def advised_replay():
        session = OLAPSession(dataset.instance, dataset.schema, cost_model=report.cost_model)
        session.apply_recommendations(report)
        return replay_on_session(session, root_query, steps)

    benchmark(advised_replay)
    _check(results)
    measurements, metadata = _record(results)
    bench_record_writer("advisor_blogger", measurements, metadata)


def test_blogger_advised_beats_static(blogger_comparison):
    _, results = blogger_comparison
    _check(results)
    assert results["advised_seconds"] < results["static_seconds"], (
        f"advised {results['advised_seconds']:.4f}s did not beat "
        f"static {results['static_seconds']:.4f}s"
    )


# --- video drill-navigation session -----------------------------------------


def test_video_advised_replay(benchmark, video_comparison, bench_record_writer):
    dataset, results = video_comparison
    report = results["report"]
    root_query, steps = video_session_replay(dataset)

    def advised_replay():
        session = OLAPSession(dataset.instance, dataset.schema, cost_model=report.cost_model)
        session.apply_recommendations(report)
        return replay_on_session(session, root_query, steps)

    benchmark(advised_replay)
    _check(results)
    measurements, metadata = _record(results)
    bench_record_writer("advisor_video", measurements, metadata)


def test_video_advised_beats_static(video_comparison):
    _, results = video_comparison
    _check(results)
    assert results["advised_seconds"] < results["static_seconds"], (
        f"advised {results['advised_seconds']:.4f}s did not beat "
        f"static {results['static_seconds']:.4f}s"
    )


# --- warm start reaches a fresh session -------------------------------------


def test_recommendations_warm_start_fresh_session(blogger_comparison):
    """apply_recommendations on a fresh session yields cache hits immediately."""
    dataset, results = blogger_comparison
    report = results["report"]
    fresh = OLAPSession(dataset.instance, dataset.schema, cost_model=report.cost_model)
    applied = fresh.apply_recommendations(report)
    assert applied["materialized"] + applied["pinned"] > 0
    root_query, _ = blogger_session_replay(dataset)
    fresh.execute(root_query)
    assert fresh.cache.stats.hits >= 1
    assert fresh.history[-1].strategy.startswith("cache")
