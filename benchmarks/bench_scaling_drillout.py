"""EXP-3 (Figure B): DRILL-OUT (Algorithm 1) vs. scratch as the instance grows.

Expected shape: Algorithm 1's cost tracks |pres(Q)| (facts × measure values ×
multi-valued dimension combinations), which is a fraction of the instance;
the scratch curve re-runs classifier + measure + join over the full instance
and grows faster.
"""

import pytest

from repro.bench.workloads import SCALES, bench_scale_from_env
from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap import DrillOut, OLAPSession
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.rewriting import drill_out_from_partial

SWEEP = [int(value) for value in SCALES[bench_scale_from_env()]["sweep"]]

_CACHE = {}


def _session_for(facts: int):
    if facts not in _CACHE:
        config = GenericConfig(
            facts=facts, dimensions=3, values_per_dimension=1.4, measures_per_fact=2.0
        )
        dataset = generic_dataset(config)
        session = OLAPSession(dataset.instance, dataset.schema)
        query = generic_query(config, aggregate="count")
        session.execute(query)
        _CACHE[facts] = (session, query)
    return _CACHE[facts]


@pytest.mark.parametrize("facts", SWEEP)
def test_drill_out_rewrite_scaling(benchmark, facts):
    session, query = _session_for(facts)
    operation = DrillOut(query.dimension_names[-1])
    transformed = operation.apply(query)
    partial = session.materialized(query).partial
    benchmark.extra_info["facts"] = facts
    benchmark.extra_info["pres_rows"] = len(partial)
    result = benchmark(lambda: drill_out_from_partial(partial, query, transformed))
    assert len(result) > 0


@pytest.mark.parametrize("facts", SWEEP)
def test_drill_out_scratch_scaling(benchmark, facts):
    session, query = _session_for(facts)
    operation = DrillOut(query.dimension_names[-1])
    transformed = operation.apply(query)
    benchmark.extra_info["facts"] = facts
    benchmark.extra_info["instance_triples"] = len(session.instance)
    result = benchmark(
        lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed)
    )
    assert len(result) > 0
