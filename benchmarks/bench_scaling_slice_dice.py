"""EXP-2 (Figure A): SLICE/DICE rewriting vs. scratch as the instance grows.

Each benchmark is parameterized by the number of facts in the generic
dataset; the series of rewrite vs. scratch medians over the sweep is the
figure's pair of curves.  Expected shape: the rewrite curve stays nearly
flat (its input is ans(Q), whose size tracks the number of distinct
dimension combinations), while the scratch curve grows with the instance.
"""

import pytest

from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap import Dice, OLAPSession, Slice
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.rewriting import slice_dice_from_answer

from repro.bench.workloads import SCALES, bench_scale_from_env

SWEEP = [int(value) for value in SCALES[bench_scale_from_env()]["sweep"]]


def _prepared_session(facts: int):
    config = GenericConfig(facts=facts, dimensions=3, values_per_dimension=1.4, measures_per_fact=2.0)
    dataset = generic_dataset(config)
    session = OLAPSession(dataset.instance, dataset.schema)
    query = generic_query(config, aggregate="count")
    session.execute(query)
    return session, query


_CACHE = {}


def _session_for(facts: int):
    if facts not in _CACHE:
        _CACHE[facts] = _prepared_session(facts)
    return _CACHE[facts]


def _slice_operation(session, query):
    answer = session.materialized(query).answer
    value = sorted(answer.relation.distinct_values(query.dimension_names[0]), key=repr)[0]
    return Slice(query.dimension_names[0], value)


def _dice_operation(session, query):
    answer = session.materialized(query).answer
    first = sorted(answer.relation.distinct_values(query.dimension_names[0]), key=repr)[:5]
    second = sorted(answer.relation.distinct_values(query.dimension_names[1]), key=repr)[:5]
    return Dice({query.dimension_names[0]: first, query.dimension_names[1]: second})


@pytest.mark.parametrize("facts", SWEEP)
def test_slice_rewrite_scaling(benchmark, facts):
    session, query = _session_for(facts)
    operation = _slice_operation(session, query)
    transformed = operation.apply(query)
    answer = session.materialized(query).answer
    benchmark.extra_info["facts"] = facts
    benchmark(lambda: slice_dice_from_answer(answer, transformed))


@pytest.mark.parametrize("facts", SWEEP)
def test_slice_scratch_scaling(benchmark, facts):
    session, query = _session_for(facts)
    operation = _slice_operation(session, query)
    transformed = operation.apply(query)
    benchmark.extra_info["facts"] = facts
    benchmark(lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed))


@pytest.mark.parametrize("facts", SWEEP)
def test_dice_rewrite_scaling(benchmark, facts):
    session, query = _session_for(facts)
    operation = _dice_operation(session, query)
    transformed = operation.apply(query)
    answer = session.materialized(query).answer
    benchmark.extra_info["facts"] = facts
    benchmark(lambda: slice_dice_from_answer(answer, transformed))


@pytest.mark.parametrize("facts", SWEEP)
def test_dice_scratch_scaling(benchmark, facts):
    session, query = _session_for(facts)
    operation = _dice_operation(session, query)
    transformed = operation.apply(query)
    benchmark.extra_info["facts"] = facts
    benchmark(lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed))


# --- engine before/after: scratch evaluation, id-space vs. the seed pipeline


@pytest.mark.parametrize("facts", SWEEP)
def test_scratch_engine_idspace_scaling(benchmark, facts):
    from repro.analytics.evaluator import AnalyticalQueryEvaluator
    from repro.olap.cube import Cube
    from repro.bench.legacy import LegacyAnalyticalEvaluator

    session, query = _session_for(facts)
    evaluator = AnalyticalQueryEvaluator(session.instance, id_space=True)
    benchmark.extra_info["facts"] = facts
    answer = benchmark(lambda: evaluator.answer(query))
    legacy = LegacyAnalyticalEvaluator(session.instance).answer(query)
    assert Cube(answer, query).same_cells(Cube(legacy, query))


@pytest.mark.parametrize("facts", SWEEP)
def test_scratch_engine_legacy_scaling(benchmark, facts):
    from repro.bench.legacy import LegacyAnalyticalEvaluator

    session, query = _session_for(facts)
    evaluator = LegacyAnalyticalEvaluator(session.instance)
    benchmark.extra_info["facts"] = facts
    answer = benchmark(lambda: evaluator.answer(query))
    assert len(answer) > 0
