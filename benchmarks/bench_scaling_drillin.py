"""EXP-4 (Figure C): DRILL-IN (Algorithm 2) vs. scratch as the instance grows.

DRILL-IN is the least favourable rewriting because it must consult the
instance through the auxiliary query q_aux; the expected shape is still a
win over scratch (q_aux touches only the classifier fragment around the new
dimension, not the measure side), with a smaller factor than DRILL-OUT.
"""

import pytest

from repro.bench.workloads import SCALES, bench_scale_from_env
from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap import DrillIn, OLAPSession
from repro.olap.auxiliary import build_auxiliary_query
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.rewriting import drill_in_from_partial

SWEEP = [int(value) for value in SCALES[bench_scale_from_env()]["sweep"]]

_CACHE = {}


def _session_for(facts: int):
    if facts not in _CACHE:
        config = GenericConfig(
            facts=facts, dimensions=3, values_per_dimension=1.4, measures_per_fact=2.0, with_detail=True
        )
        dataset = generic_dataset(config)
        session = OLAPSession(dataset.instance, dataset.schema)
        query = generic_query(config, aggregate="count", include_detail_in_classifier=True)
        session.execute(query)
        _CACHE[facts] = (session, query)
    return _CACHE[facts]


@pytest.mark.parametrize("facts", SWEEP)
def test_drill_in_rewrite_scaling(benchmark, facts):
    session, query = _session_for(facts)
    operation = DrillIn("da")
    transformed = operation.apply(query)
    partial = session.materialized(query).partial
    instance_evaluator = session.evaluator.bgp_evaluator
    benchmark.extra_info["facts"] = facts
    benchmark.extra_info["pres_rows"] = len(partial)
    result = benchmark(
        lambda: drill_in_from_partial(partial, query, transformed, instance_evaluator)
    )
    assert len(result) > 0


@pytest.mark.parametrize("facts", SWEEP)
def test_drill_in_scratch_scaling(benchmark, facts):
    session, query = _session_for(facts)
    operation = DrillIn("da")
    transformed = operation.apply(query)
    benchmark.extra_info["facts"] = facts
    benchmark.extra_info["instance_triples"] = len(session.instance)
    result = benchmark(
        lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed)
    )
    assert len(result) > 0


@pytest.mark.parametrize("facts", SWEEP)
def test_auxiliary_query_evaluation_only(benchmark, facts):
    """The instance-touching part of Algorithm 2 in isolation (ablation)."""
    session, query = _session_for(facts)
    auxiliary = build_auxiliary_query(query.classifier, "da")
    instance_evaluator = session.evaluator.bgp_evaluator
    benchmark.extra_info["facts"] = facts
    result = benchmark(lambda: instance_evaluator.evaluate(auxiliary, semantics="set"))
    assert len(result) > 0
