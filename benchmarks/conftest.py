"""Shared fixtures for the benchmark suite.

Datasets are generated once per session at the benchmark scale controlled by
the ``REPRO_BENCH_SCALE`` environment variable (``tiny`` / ``small`` /
``paper``, default ``small``), so individual benchmarks only time the
operation under study, never data generation or instance materialization.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.workloads import SCALES, bench_scale_from_env
from repro.datagen import (
    BloggerConfig,
    GenericConfig,
    VideoConfig,
    blogger_dataset,
    generic_dataset,
    video_dataset,
)
from repro.datagen.blogger import sites_per_blogger_query, words_per_blogger_query
from repro.datagen.generic import generic_query
from repro.datagen.retail import RetailConfig, retail_dataset
from repro.datagen.videos import views_per_url_query
from repro.olap import OLAPSession


@pytest.fixture(scope="session")
def scale_parameters():
    return SCALES[bench_scale_from_env()]


@pytest.fixture(scope="session")
def bench_record_writer():
    """Session-scoped writer for machine-readable ``BENCH_*.json`` records.

    Benchmarks call it as ``bench_record_writer(name, measurements,
    metadata)``; the active ``REPRO_BENCH_SCALE`` is stamped into every
    record and the file lands in :func:`repro.bench.reporting.bench_records_dir`
    (override with ``REPRO_BENCH_RECORDS_DIR``).
    """
    from repro.bench.reporting import write_bench_record

    scale = bench_scale_from_env()

    def write(name, measurements, metadata=None):
        return write_bench_record(name, scale, measurements, metadata)

    return write


@pytest.fixture(scope="session")
def blogger_bench_dataset(scale_parameters):
    return blogger_dataset(BloggerConfig(bloggers=int(scale_parameters["bloggers"])))


@pytest.fixture(scope="session")
def blogger_bench_session(blogger_bench_dataset):
    session = OLAPSession(blogger_bench_dataset.instance, blogger_bench_dataset.schema)
    query = sites_per_blogger_query(blogger_bench_dataset.schema)
    session.execute(query)
    return session, query


@pytest.fixture(scope="session")
def video_bench_dataset(scale_parameters):
    return video_dataset(VideoConfig(videos=int(scale_parameters["videos"])))


@pytest.fixture(scope="session")
def video_bench_session(video_bench_dataset):
    session = OLAPSession(video_bench_dataset.instance, video_bench_dataset.schema)
    query = views_per_url_query(video_bench_dataset.schema)
    session.execute(query)
    return session, query


@pytest.fixture(scope="session")
def retail_bench_dataset(scale_parameters):
    facts = int(scale_parameters["facts"])
    return retail_dataset(
        RetailConfig(
            sales=facts,
            stores=max(8, facts // 50),
            products=max(20, facts // 20),
            cities=9,
            regions=3,
            categories=8,
            departments=3,
        )
    )


@pytest.fixture(scope="session")
def generic_bench_config(scale_parameters):
    return GenericConfig(
        facts=int(scale_parameters["facts"]),
        dimensions=3,
        values_per_dimension=1.4,
        measures_per_fact=2.0,
        with_detail=True,
    )


@pytest.fixture(scope="session")
def generic_bench_dataset(generic_bench_config):
    return generic_dataset(generic_bench_config)


@pytest.fixture(scope="session")
def generic_bench_session(generic_bench_dataset, generic_bench_config):
    session = OLAPSession(generic_bench_dataset.instance, generic_bench_dataset.schema)
    query = generic_query(generic_bench_config, aggregate="count", include_detail_in_classifier=True)
    session.execute(query)
    return session, query
