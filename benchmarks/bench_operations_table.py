"""EXP-1 (Table 1): rewriting vs. from-scratch, per OLAP operation, fixed instance.

Benchmarked pairs (each operation once per strategy):

* SLICE  — σ over ans(Q)           vs. re-evaluating Q_SLICE on the instance;
* DICE   — σ over ans(Q)           vs. re-evaluating Q_DICE;
* DRILL-OUT — Algorithm 1 on pres(Q) vs. re-evaluating Q_DRILL-OUT;
* DRILL-IN  — Algorithm 2 on pres(Q)+q_aux vs. re-evaluating Q_DRILL-IN
  (on the video scenario, whose classifier has the required existential
  variable).

The paper's claim (shape): every rewrite row is faster than its scratch row,
SLICE/DICE by the largest factor.

The trailing ``test_scratch_engine_*`` group reports the id-space refactor's
before/after on the from-scratch path itself: the same query answered by the
frozen seed pipeline (:mod:`repro.bench.legacy`), by the refactored
operators with eager decoding (``id_space=False``) and by the default
id-space engine — with a ``Cube.same_cells`` equality check across all
three.
"""

import pytest

from repro.analytics.evaluator import AnalyticalQueryEvaluator
from repro.bench.legacy import LegacyAnalyticalEvaluator
from repro.olap import Dice, DrillIn, DrillOut, Slice
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.cube import Cube
from repro.olap.rewriting import (
    drill_in_from_partial,
    drill_out_from_partial,
    slice_dice_from_answer,
)


def _first_value(session, query, dimension):
    cube_answer = session.materialized(query).answer
    return sorted(cube_answer.relation.distinct_values(dimension), key=repr)[0]


def _values(session, query, dimension, count):
    cube_answer = session.materialized(query).answer
    return sorted(cube_answer.relation.distinct_values(dimension), key=repr)[:count]


# --- SLICE -----------------------------------------------------------------


def test_slice_rewrite(benchmark, blogger_bench_session):
    session, query = blogger_bench_session
    operation = Slice("dage", _first_value(session, query, "dage"))
    transformed = operation.apply(query)
    materialized = session.materialized(query)
    result = benchmark(lambda: slice_dice_from_answer(materialized.answer, transformed))
    assert len(result) >= 0


def test_slice_scratch(benchmark, blogger_bench_session):
    session, query = blogger_bench_session
    operation = Slice("dage", _first_value(session, query, "dage"))
    transformed = operation.apply(query)
    result = benchmark(
        lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed)
    )
    assert len(result) >= 0


# --- DICE ------------------------------------------------------------------


def test_dice_rewrite(benchmark, blogger_bench_session):
    session, query = blogger_bench_session
    operation = Dice({"dage": (20, 40), "dcity": _values(session, query, "dcity", 3)})
    transformed = operation.apply(query)
    materialized = session.materialized(query)
    result = benchmark(lambda: slice_dice_from_answer(materialized.answer, transformed))
    assert len(result) >= 0


def test_dice_scratch(benchmark, blogger_bench_session):
    session, query = blogger_bench_session
    operation = Dice({"dage": (20, 40), "dcity": _values(session, query, "dcity", 3)})
    transformed = operation.apply(query)
    result = benchmark(
        lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed)
    )
    assert len(result) >= 0


# --- DRILL-OUT ---------------------------------------------------------------


def test_drill_out_rewrite(benchmark, blogger_bench_session):
    session, query = blogger_bench_session
    operation = DrillOut("dage")
    transformed = operation.apply(query)
    partial = session.materialized(query).partial
    result = benchmark(lambda: drill_out_from_partial(partial, query, transformed))
    assert len(result) > 0


def test_drill_out_scratch(benchmark, blogger_bench_session):
    session, query = blogger_bench_session
    operation = DrillOut("dage")
    transformed = operation.apply(query)
    result = benchmark(
        lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed)
    )
    assert len(result) > 0


# --- DRILL-IN ----------------------------------------------------------------


def test_drill_in_rewrite(benchmark, video_bench_session):
    session, query = video_bench_session
    operation = DrillIn("d3")
    transformed = operation.apply(query)
    partial = session.materialized(query).partial
    instance_evaluator = session.evaluator.bgp_evaluator
    result = benchmark(
        lambda: drill_in_from_partial(partial, query, transformed, instance_evaluator)
    )
    assert len(result) > 0


def test_drill_in_scratch(benchmark, video_bench_session):
    session, query = video_bench_session
    operation = DrillIn("d3")
    transformed = operation.apply(query)
    result = benchmark(
        lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed)
    )
    assert len(result) > 0


# --- engine before/after: the id-space refactor on the from-scratch path ----


def test_scratch_engine_idspace(benchmark, blogger_bench_session):
    """The default engine: id-space end-to-end, late materialization."""
    session, query = blogger_bench_session
    evaluator = AnalyticalQueryEvaluator(session.instance, id_space=True)
    answer = benchmark(lambda: evaluator.answer(query))
    legacy = LegacyAnalyticalEvaluator(session.instance).answer(query)
    assert Cube(answer, query).same_cells(Cube(legacy, query))


def test_scratch_engine_decoded(benchmark, blogger_bench_session):
    """Refactored operators with decoding forced at the BGP boundary."""
    session, query = blogger_bench_session
    evaluator = AnalyticalQueryEvaluator(session.instance, id_space=False)
    answer = benchmark(lambda: evaluator.answer(query))
    idspace = AnalyticalQueryEvaluator(session.instance, id_space=True).answer(query)
    assert Cube(answer, query).same_cells(Cube(idspace, query))


def test_scratch_engine_legacy(benchmark, blogger_bench_session):
    """The frozen seed pipeline — the 'before' of the refactor."""
    session, query = blogger_bench_session
    evaluator = LegacyAnalyticalEvaluator(session.instance)
    answer = benchmark(lambda: evaluator.answer(query))
    idspace = AnalyticalQueryEvaluator(session.instance, id_space=True).answer(query)
    assert Cube(answer, query).same_cells(Cube(idspace, query))
