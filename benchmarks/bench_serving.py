"""SERVING — multi-tenant load generation against the concurrent front-end.

Drives :class:`~repro.serving.service.OLAPService` with concurrent tenant
clients at the scale selected by ``REPRO_BENCH_SCALE``: for each read/write
mix (read-only, 90/10) and each client count (1, 4, 8), a fresh service
over a fresh copy of the generic instance absorbs the full request plan and
reports p50/p95/p99 read latency, throughput and typed-rejection counts.

Trust anchor: inside the harness, *after* the timed window, every answered
cube is checked cell-for-cell against from-scratch evaluation over the
exact graph generation it was served from — a service that tears reads or
serves stale snapshots fails the run instead of posting good numbers.

Each mix emits one ``BENCH_serving_<mix>_<scale>.json`` record whose
measurements flatten the run table (``c{clients}_p50_s`` …) and whose
metadata carries the full per-cell rows.
"""

import pytest

from repro.bench.workloads import (
    SERVING_CLIENTS,
    SERVING_MIXES,
    serving_load_run,
)


@pytest.fixture(scope="module")
def serving_runs(generic_bench_dataset):
    """The full run table: mix → client count → one load run's results."""
    runs = {}
    for mix_label, write_ratio in SERVING_MIXES:
        for clients in SERVING_CLIENTS:
            runs[(mix_label, clients)] = serving_load_run(
                generic_bench_dataset.instance.copy(),
                generic_bench_dataset.schema,
                generic_bench_dataset.query,
                clients=clients,
                write_ratio=write_ratio,
                requests_per_client=10,
                seed=clients,
                write_dimensions=generic_bench_dataset.config.dimensions,
            )
    return runs


def _mix_slug(mix_label: str) -> str:
    return "readonly" if mix_label == "read-only" else "mixed_90_10"


@pytest.mark.parametrize("mix_label,write_ratio", SERVING_MIXES, ids=[m for m, _ in SERVING_MIXES])
def test_serving_load(mix_label, write_ratio, serving_runs, bench_record_writer):
    measurements = {}
    rows = []
    for clients in SERVING_CLIENTS:
        run = serving_runs[(mix_label, clients)]
        # The in-harness differential check: every answer verified against
        # scratch at its snapshot version, all operations accounted for.
        assert run["verified"] == run["served"]
        assert run["served"] + run["writes"] + run["rejected"] == run["operations"]
        assert run["served"] > 0
        if write_ratio > 0 and run["publishes"] > 0:
            assert len(run["versions_served"]) >= 1
        prefix = f"c{clients}"
        measurements[f"{prefix}_p50_s"] = run["read_p50_ms"] / 1000.0
        measurements[f"{prefix}_p95_s"] = run["read_p95_ms"] / 1000.0
        measurements[f"{prefix}_p99_s"] = run["read_p99_ms"] / 1000.0
        measurements[f"{prefix}_wall_s"] = run["wall_seconds"]
        rows.append(
            {
                "clients": clients,
                "served": run["served"],
                "writes": run["writes"],
                "rejected": run["rejected"],
                "rejected_queue_full": run["rejected_queue_full"],
                "rejected_tenant_busy": run["rejected_tenant_busy"],
                "publishes": run["publishes"],
                "versions_served": run["versions_served"],
                "p50_ms": round(run["read_p50_ms"], 3),
                "p95_ms": round(run["read_p95_ms"], 3),
                "p99_ms": round(run["read_p99_ms"], 3),
                "throughput_ops": round(run["throughput_ops"], 1),
                "verified": run["verified"],
            }
        )
    bench_record_writer(
        f"serving_{_mix_slug(mix_label)}",
        measurements,
        {
            "mix": mix_label,
            "write_ratio": write_ratio,
            "requests_per_client": 10,
            "runs": rows,
        },
    )


def test_serving_scales_with_clients(serving_runs):
    """More clients must mean more served queries, never fewer (sanity)."""
    for mix_label, _ in SERVING_MIXES:
        served = [serving_runs[(mix_label, c)]["served"] for c in SERVING_CLIENTS]
        assert served == sorted(served)
