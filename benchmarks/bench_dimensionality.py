"""EXP-7 (Table 2): DRILL-OUT and DRILL-IN cost vs. the number of dimensions.

More classifier dimensions mean wider pres(Q) rows and more dimension-value
combinations; the experiment checks how both rewritings and the scratch
baseline respond (expected: all grow, rewriting keeps its advantage).
"""

import pytest

from repro.bench.workloads import SCALES, bench_scale_from_env
from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap import DrillIn, DrillOut, OLAPSession
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.rewriting import drill_in_from_partial, drill_out_from_partial

DIMENSIONS = [2, 3, 4, 5]

_CACHE = {}


def _session_for(dimensions: int):
    if dimensions not in _CACHE:
        parameters = SCALES[bench_scale_from_env()]
        config = GenericConfig(
            facts=int(parameters["facts"]),
            dimensions=dimensions,
            values_per_dimension=1.3,
            with_detail=True,
        )
        dataset = generic_dataset(config)
        session = OLAPSession(dataset.instance, dataset.schema)
        count_query = generic_query(config, aggregate="count")
        session.execute(count_query)
        detail_query = generic_query(
            config, aggregate="count", include_detail_in_classifier=True, name="Qd"
        )
        session.execute(detail_query)
        _CACHE[dimensions] = (session, count_query, detail_query)
    return _CACHE[dimensions]


@pytest.mark.parametrize("dimensions", DIMENSIONS)
def test_drill_out_rewrite_dimensionality(benchmark, dimensions):
    session, query, _ = _session_for(dimensions)
    operation = DrillOut(query.dimension_names[-1])
    transformed = operation.apply(query)
    partial = session.materialized(query).partial
    benchmark.extra_info["dimensions"] = dimensions
    benchmark(lambda: drill_out_from_partial(partial, query, transformed))


@pytest.mark.parametrize("dimensions", DIMENSIONS)
def test_drill_out_scratch_dimensionality(benchmark, dimensions):
    session, query, _ = _session_for(dimensions)
    operation = DrillOut(query.dimension_names[-1])
    transformed = operation.apply(query)
    benchmark.extra_info["dimensions"] = dimensions
    benchmark(lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed))


@pytest.mark.parametrize("dimensions", DIMENSIONS)
def test_drill_in_rewrite_dimensionality(benchmark, dimensions):
    session, _, query = _session_for(dimensions)
    operation = DrillIn("da")
    transformed = operation.apply(query)
    partial = session.materialized(query).partial
    instance_evaluator = session.evaluator.bgp_evaluator
    benchmark.extra_info["dimensions"] = dimensions
    benchmark(lambda: drill_in_from_partial(partial, query, transformed, instance_evaluator))


@pytest.mark.parametrize("dimensions", DIMENSIONS)
def test_drill_in_scratch_dimensionality(benchmark, dimensions):
    session, _, query = _session_for(dimensions)
    operation = DrillIn("da")
    transformed = operation.apply(query)
    benchmark.extra_info["dimensions"] = dimensions
    benchmark(lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed))
