"""EXP-6 (Figure E): DRILL-OUT under increasing dimension multi-valuedness.

Fan-out (values per fact per dimension) is the RDF-specific parameter that
(a) grows pres(Q) — so Algorithm 1's cost grows with it — and (b) makes the
naive ans(Q)-based re-aggregation wrong (Example 5).  The benchmark times
Algorithm 1 and the scratch baseline per fan-out level; the companion
correctness measurement (how many cells the naive rewriting gets wrong) is
reported by ``repro.bench.workloads.experiment_multivalue_fanout`` and in
EXPERIMENTS.md.
"""

import pytest

from repro.bench.workloads import SCALES, bench_scale_from_env
from repro.datagen.generic import GenericConfig, generic_dataset, generic_query
from repro.olap import DrillOut, OLAPSession
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.rewriting import drill_out_from_partial

FANOUTS = [1.0, 1.5, 2.0, 3.0]

_CACHE = {}


def _session_for(fanout: float):
    if fanout not in _CACHE:
        parameters = SCALES[bench_scale_from_env()]
        config = GenericConfig(
            facts=int(parameters["facts"]),
            dimensions=2,
            values_per_dimension=fanout,
            measures_per_fact=1.5,
            with_detail=False,
        )
        dataset = generic_dataset(config)
        session = OLAPSession(dataset.instance, dataset.schema)
        query = generic_query(config, aggregate="sum")
        session.execute(query)
        _CACHE[fanout] = (session, query)
    return _CACHE[fanout]


@pytest.mark.parametrize("fanout", FANOUTS)
def test_drill_out_rewrite_fanout(benchmark, fanout):
    session, query = _session_for(fanout)
    operation = DrillOut(query.dimension_names[-1])
    transformed = operation.apply(query)
    partial = session.materialized(query).partial
    benchmark.extra_info["fanout"] = fanout
    benchmark.extra_info["pres_rows"] = len(partial)
    result = benchmark(lambda: drill_out_from_partial(partial, query, transformed))
    assert len(result) > 0


@pytest.mark.parametrize("fanout", FANOUTS)
def test_drill_out_scratch_fanout(benchmark, fanout):
    session, query = _session_for(fanout)
    operation = DrillOut(query.dimension_names[-1])
    transformed = operation.apply(query)
    benchmark.extra_info["fanout"] = fanout
    result = benchmark(
        lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed)
    )
    assert len(result) > 0
