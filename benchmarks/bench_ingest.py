"""INGEST — streaming ingestion with continuous refresh scheduling.

Drives an :class:`~repro.olap.session.OLAPSession` over a live graph fed
through a :class:`~repro.ingest.stream.StreamIngestor` at the scale
selected by ``REPRO_BENCH_SCALE``: a mixed 90/10 read/write stream where
writes are coalesced into micro-batches and, after every published batch,
the :class:`~repro.ingest.scheduler.RefreshScheduler` decides per cached
cube between eager refresh, lazy refresh-on-read and invalidation.  One
run per policy (eager / lazy / auto) reports sustained applied
mutations/sec on the write path and p50/p95/p99 read latency.

Trust anchor: inside the harness, outside the timed sections, every served
cube is checked cell-for-cell against from-scratch evaluation at the graph
version it was served from — an ingestor that tears batches or a scheduler
that patches wrongly fails the run instead of posting good numbers.

Each policy emits one ``BENCH_ingest_<policy>_<scale>.json`` record.
"""

import pytest

from repro.bench.workloads import INGEST_POLICIES, ingest_load_run

OPERATIONS = 200
WRITE_RATIO = 0.1


@pytest.fixture(scope="module")
def ingest_runs(generic_bench_dataset):
    """One mixed-stream run per refresh policy over the same dataset."""
    runs = {}
    for policy in INGEST_POLICIES:
        runs[policy] = ingest_load_run(
            generic_bench_dataset.instance,
            generic_bench_dataset.schema,
            generic_bench_dataset.query,
            policy=policy,
            operations=OPERATIONS,
            write_ratio=WRITE_RATIO,
            batch_size=8,
            seed=7,
            dimensions=generic_bench_dataset.config.dimensions,
        )
    return runs


@pytest.mark.parametrize("policy", INGEST_POLICIES)
def test_ingest_mixed_stream(policy, ingest_runs, bench_record_writer):
    run = ingest_runs[policy]
    # The in-harness differential check: every read (plus the final one
    # after the drain) verified against scratch at its graph version.
    assert run["verified"] == run["reads"] + 1
    assert run["reads"] + run["writes"] == run["operations"]
    assert run["batches"] > 0
    assert run["applied"] <= run["submitted"]
    # The policy actually ran: eager patches eagerly, lazy defers to the
    # read path (each lazy mark is consumed by a later read or the drain).
    if policy == "eager":
        assert run["eager_refreshes"] > 0 and run["lazy_marks"] == 0
    if policy == "lazy":
        assert run["lazy_marks"] > 0 and run["eager_refreshes"] == 0
        assert run["lazy_refreshes"] > 0
    bench_record_writer(
        f"ingest_{policy}",
        {
            "updates_per_s": run["updates_per_s"],
            "read_p50_s": run["read_p50_ms"] / 1000.0,
            "read_p95_s": run["read_p95_ms"] / 1000.0,
            "read_p99_s": run["read_p99_ms"] / 1000.0,
            "write_s": run["write_seconds"],
            "wall_s": run["wall_seconds"],
        },
        {
            "policy": policy,
            "operations": run["operations"],
            "write_ratio": WRITE_RATIO,
            "reads": run["reads"],
            "writes": run["writes"],
            "batches": run["batches"],
            "submitted": run["submitted"],
            "applied": run["applied"],
            "coalesced": run["coalesced"],
            "eager_refreshes": run["eager_refreshes"],
            "lazy_marks": run["lazy_marks"],
            "invalidations": run["invalidations"],
            "cache_refreshes": run["cache_refreshes"],
            "lazy_refreshes": run["lazy_refreshes"],
            "verified": run["verified"],
        },
    )


def test_ingest_policies_serve_identical_data(ingest_runs):
    """Policies trade *when* refresh work happens, never *what* is served:
    every run verified all of its reads, whatever the decision mix."""
    for policy, run in ingest_runs.items():
        assert run["verified"] == run["reads"] + 1, policy
    mixes = {p: (r["eager_refreshes"], r["lazy_marks"]) for p, r in ingest_runs.items()}
    assert mixes["eager"][1] == 0
    assert mixes["lazy"][0] == 0
