"""EXP-5 (Figure D): DICE cost as the retained fraction of dimension values varies.

The rewriting cost is one pass over ans(Q) regardless of selectivity; the
scratch cost shrinks slightly for very selective dices (fewer classifier
rows survive) but still pays the full classifier/measure evaluation.
Expected shape: the speedup is largest for selective dices and narrows as
the dice approaches the full cube.
"""

import pytest

from repro.bench.workloads import SCALES, bench_scale_from_env
from repro.datagen.generic import GenericConfig, generic_dataset
from repro.olap import Dice, OLAPSession
from repro.olap.baseline import transformed_answer_from_scratch
from repro.olap.rewriting import slice_dice_from_answer

SELECTIVITIES = [0.05, 0.25, 0.5, 1.0]

_STATE = {}


def _prepared():
    if not _STATE:
        parameters = SCALES[bench_scale_from_env()]
        config = GenericConfig(
            facts=int(parameters["facts"]), dimensions=2, dimension_cardinality=50
        )
        dataset = generic_dataset(config)
        session = OLAPSession(dataset.instance, dataset.schema)
        session.execute(dataset.query)
        dimension = dataset.query.dimension_names[0]
        values = sorted(
            session.materialized(dataset.query).answer.relation.distinct_values(dimension), key=repr
        )
        _STATE["session"] = session
        _STATE["query"] = dataset.query
        _STATE["dimension"] = dimension
        _STATE["values"] = values
    return _STATE["session"], _STATE["query"], _STATE["dimension"], _STATE["values"]


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_dice_rewrite_selectivity(benchmark, selectivity):
    session, query, dimension, values = _prepared()
    keep = max(1, int(len(values) * selectivity))
    operation = Dice({dimension: values[:keep]})
    transformed = operation.apply(query)
    answer = session.materialized(query).answer
    benchmark.extra_info["selectivity"] = selectivity
    benchmark(lambda: slice_dice_from_answer(answer, transformed))


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_dice_scratch_selectivity(benchmark, selectivity):
    session, query, dimension, values = _prepared()
    keep = max(1, int(len(values) * selectivity))
    operation = Dice({dimension: values[:keep]})
    transformed = operation.apply(query)
    benchmark.extra_info["selectivity"] = selectivity
    benchmark(lambda: transformed_answer_from_scratch(session.evaluator, query, operation, transformed))
