#!/usr/bin/env python3
"""A dashboard-style OLAP session over a configurable synthetic warehouse.

Simulates what an interactive analytics dashboard does behind the scenes: it
keeps one long-lived :class:`OLAPSession`, executes a handful of base cubes
once, and then serves a stream of user interactions (slice, dice, drill) by
*rewriting the materialized results* instead of hitting the instance again.
At the end it prints the session history and the totals per strategy — the
operational argument for the paper's approach.

It also demonstrates the correctness trap the paper warns about: the naive
relational-style drill-out over ans(Q) is computed alongside the correct
Algorithm 1 result and the number of wrong cells is reported.

Run with:  python examples/olap_dashboard_session.py [--facts N]
"""

import argparse

from repro import Cube, Dice, DrillIn, DrillOut, OLAPSession, Slice
from repro.bench.harness import ResultTable
from repro.datagen import GenericConfig, generic_dataset
from repro.datagen.generic import generic_query
from repro.olap.rewriting import drill_out_from_answer_naive


def run(facts: int) -> None:
    config = GenericConfig(
        facts=facts,
        dimensions=3,
        dimension_cardinality=25,
        values_per_dimension=1.5,
        measures_per_fact=2.0,
        with_detail=True,
    )
    print(f"Generating a generic warehouse with {facts} facts ...")
    dataset = generic_dataset(config)
    print(f"  AnS instance: {len(dataset.instance)} triples\n")

    session = OLAPSession(dataset.instance, dataset.schema)

    # Two base cubes the "dashboard" materializes up front.
    count_cube_query = generic_query(config, aggregate="count", name="events_by_dims")
    sum_cube_query = generic_query(
        config, aggregate="sum", include_detail_in_classifier=True, name="volume_by_dims"
    )
    session.execute(count_cube_query)
    session.execute(sum_cube_query)
    print(f"Materialized base cubes: {', '.join(session.executed_queries())}\n")

    d0_values = sorted(
        Cube(session.materialized(count_cube_query).answer, count_cube_query).dimension_values("d0"),
        key=repr,
    )

    # A stream of user interactions, each answered on the rewriting path.
    interactions = [
        (count_cube_query.name, Slice("d0", d0_values[0])),
        (count_cube_query.name, Dice({"d1": None})),  # placeholder replaced below
        (count_cube_query.name, DrillOut("d2")),
        ("events_by_dims_drillout", DrillOut("d1")),
        (sum_cube_query.name, DrillIn("da")),
        (sum_cube_query.name, DrillOut("d0")),
    ]
    # Fill in the dice values now that the cube is materialized.
    d1_values = sorted(
        Cube(session.materialized(count_cube_query).answer, count_cube_query).dimension_values("d1"),
        key=repr,
    )
    interactions[1] = (count_cube_query.name, Dice({"d1": d1_values[: max(1, len(d1_values) // 4)]}))

    for query_name, operation in interactions:
        cube = session.transform(query_name, operation, strategy="auto")
        print(f"{operation.describe():<45} -> {len(cube):>5} cells "
              f"via {session.history[-1].strategy}")
    print()

    # The correctness trap: naive drill-out over ans(Q) vs. Algorithm 1.
    transformed = DrillOut("d2").apply(count_cube_query)
    naive = Cube(
        drill_out_from_answer_naive(session.materialized(count_cube_query).answer, transformed),
        transformed,
    )
    correct = session.transform(count_cube_query, DrillOut("d2"), strategy="scratch")
    wrong_cells = sum(
        1
        for key, value in naive.cells().items()
        if correct.get(*key, default=None) != value
    )
    print(
        f"Naive ans(Q)-based drill-out differs from the correct answer in "
        f"{wrong_cells} of {len(correct)} cells (multi-valued dimensions are double-counted).\n"
    )

    # Session summary.
    table = ResultTable(["#", "query", "operation", "strategy", "ms", "cells"], title="Session history")
    for index, record in enumerate(session.history, start=1):
        table.add_row(index, record.query_name, record.operation, record.strategy,
                      record.seconds * 1000, record.output_cells)
    print(table.to_text())

    rewritten = sum(1 for record in session.history if record.strategy.startswith("rewrite"))
    scratch = sum(1 for record in session.history if record.strategy == "scratch")
    print(f"\n{rewritten} interactions answered by rewriting, {scratch} from scratch.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--facts", type=int, default=1500, help="number of facts to generate")
    arguments = parser.parse_args()
    run(arguments.facts)


if __name__ == "__main__":
    main()
