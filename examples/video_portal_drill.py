#!/usr/bin/env python3
"""Example 6 / Figure 3 at scale: DRILL-IN through the auxiliary query.

The cube counts video views per website URL.  Drilling in by the supported
browser needs information that the materialized results of the original
query do not contain; Algorithm 2 fetches it with the *auxiliary query*
q_aux evaluated against the AnS instance, then joins it with pres(Q).

The script prints the auxiliary query the library derives (Definition 6),
answers the drill-in both by rewriting and from scratch, and shows a further
drill-out that undoes it — all through the session API.

Run with:  python examples/video_portal_drill.py [--videos N]
"""

import argparse

from repro import DrillIn, DrillOut, OLAPSession, Slice
from repro.datagen import VideoConfig, video_dataset
from repro.datagen.videos import views_per_url_query
from repro.olap.auxiliary import auxiliary_join_columns, build_auxiliary_query


def run(videos: int) -> None:
    print(f"Generating the video-portal scenario with {videos} videos ...")
    dataset = video_dataset(VideoConfig(videos=videos, websites=max(10, videos // 10)))
    print(f"  AnS instance: {len(dataset.instance)} triples\n")

    session = OLAPSession(dataset.instance, dataset.schema)
    query = views_per_url_query(dataset.schema)
    print("Original analytical query (views per URL):")
    print(query.describe(), "\n")

    cube = session.execute(query)
    print(f"ans(Q): {len(cube)} cells")
    print(cube.to_text(max_rows=6), "\n")

    pres = session.materialized(query).partial
    print(f"pres(Q): {len(pres)} rows with columns {pres.columns}\n")

    auxiliary = build_auxiliary_query(query.classifier, "d3")
    print("Auxiliary DRILL-IN query (Definition 6):")
    print(f"  {auxiliary.to_text()}")
    print(f"  joined with pres(Q) on {auxiliary_join_columns(query.classifier, auxiliary)}\n")

    comparison = session.compare_strategies(query, DrillIn("d3"))
    refined = comparison["rewrite_cube"]
    print(f"DRILL-IN by browser: {len(refined)} cells "
          f"(rewrite {comparison['rewrite_seconds'] * 1000:.2f} ms, "
          f"scratch {comparison['scratch_seconds'] * 1000:.2f} ms, "
          f"speedup {comparison['speedup']:.1f}x, equal={comparison['equal']})")
    print(refined.to_text(max_rows=10), "\n")

    # Navigate further: materialize the refined cube, slice one browser, drill the URL out.
    refined_cube = session.transform(query, DrillIn("d3"), strategy="rewrite")
    browsers = sorted(refined_cube.dimension_values("d3"), key=repr)
    per_browser = session.transform(refined_cube.query.name, DrillOut("d2"), strategy="rewrite")
    print("Views per browser (drill URL back out, rewritten):")
    print(per_browser.to_text(max_rows=10), "\n")

    one_browser = session.transform(refined_cube.query.name, Slice("d3", browsers[0]), strategy="rewrite")
    print(f"Views per URL restricted to browser {browsers[0]} (sliced, rewritten):")
    print(one_browser.to_text(max_rows=6))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--videos", type=int, default=300, help="number of videos to generate")
    arguments = parser.parse_args()
    run(arguments.videos)


if __name__ == "__main__":
    main()
