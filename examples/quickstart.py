#!/usr/bin/env python3
"""Quickstart: build an RDF warehouse, run a cube query, navigate it with OLAP.

This walks the core workflow in ~60 lines:

1. load a small RDF base graph (Turtle);
2. define an analytical schema (the "lens" over the data);
3. materialize the AnS instance;
4. run an analytical query (a cube): posts per blogger city and age;
5. apply OLAP operations — answered by *rewriting* the materialized results.

Run with:  python examples/quickstart.py
"""

from repro import (
    AnalyticalQuery,
    AnalyticalSchema,
    Dice,
    DrillOut,
    EX,
    OLAPSession,
    Slice,
    materialize_instance,
    parse_turtle,
)
from repro.bgp import parse_query

TURTLE_DATA = """
@prefix ex: <http://example.org/> .

ex:user1 a ex:Blogger ; ex:hasAge 28 ; ex:livesIn ex:Madrid ;
         ex:wrotePost ex:p1 , ex:p2 , ex:p3 .
ex:user2 a ex:Blogger ; ex:hasAge 35 ; ex:livesIn ex:NY ;
         ex:wrotePost ex:p4 .
ex:user3 a ex:Blogger ; ex:hasAge 35 ; ex:livesIn ex:NY , ex:Kyoto ;
         ex:wrotePost ex:p5 , ex:p6 .
ex:user4 a ex:Blogger ; ex:hasAge 28 ; ex:livesIn ex:Madrid .

ex:p1 a ex:BlogPost ; ex:postedOn ex:siteA ; ex:hasWordCount 100 .
ex:p2 a ex:BlogPost ; ex:postedOn ex:siteA ; ex:hasWordCount 250 .
ex:p3 a ex:BlogPost ; ex:postedOn ex:siteB ; ex:hasWordCount 900 .
ex:p4 a ex:BlogPost ; ex:postedOn ex:siteB ; ex:hasWordCount 400 .
ex:p5 a ex:BlogPost ; ex:postedOn ex:siteC ; ex:hasWordCount 150 .
ex:p6 a ex:BlogPost ; ex:postedOn ex:siteC ; ex:hasWordCount 350 .

ex:Madrid a ex:City . ex:NY a ex:City . ex:Kyoto a ex:City .
ex:siteA a ex:Site . ex:siteB a ex:Site . ex:siteC a ex:Site .
"""


def build_schema() -> AnalyticalSchema:
    """An analytical schema: which classes and properties we analyse through."""
    schema = AnalyticalSchema(name="QuickstartAnS", namespace=EX)
    for class_name in ("Blogger", "BlogPost", "City", "Site"):
        schema.add_class_from_type(class_name)
    schema.add_class("Age", parse_query("def(?o) :- ?s ex:hasAge ?o"))
    schema.add_class("Words", parse_query("def(?o) :- ?s ex:hasWordCount ?o"))
    schema.add_property_from_predicate("hasAge", "Blogger", "Age")
    schema.add_property_from_predicate("livesIn", "Blogger", "City")
    schema.add_property_from_predicate("wrotePost", "Blogger", "BlogPost")
    schema.add_property_from_predicate("postedOn", "BlogPost", "Site")
    schema.add_property_from_predicate("hasWordCount", "BlogPost", "Words")
    return schema


def build_query(schema: AnalyticalSchema) -> AnalyticalQuery:
    """Cube: number of posts per (age, city); classifier + measure + aggregate."""
    classifier = parse_query(
        "c(?x, ?dage, ?dcity) :- ?x rdf:type ex:Blogger, ?x ex:hasAge ?dage, ?x ex:livesIn ?dcity"
    )
    measure = parse_query(
        "m(?x, ?post) :- ?x rdf:type ex:Blogger, ?x ex:wrotePost ?post"
    )
    return AnalyticalQuery(classifier, measure, "count", schema=schema, name="posts_cube")


def main() -> None:
    base_graph = parse_turtle(TURTLE_DATA)
    print(f"Base graph: {len(base_graph)} triples")

    schema = build_schema()
    instance = materialize_instance(schema, base_graph)
    print(f"AnS instance: {len(instance)} triples\n")

    session = OLAPSession(instance, schema)
    cube = session.execute(build_query(schema))
    print("Posts per (age, city):")
    print(cube.to_text(), "\n")

    sliced = session.transform("posts_cube", Slice("dage", 35), strategy="rewrite")
    print("SLICE age=35 (rewritten from ans(Q)):")
    print(sliced.to_text(), "\n")

    diced = session.transform("posts_cube", Dice({"dage": (20, 30)}), strategy="rewrite")
    print("DICE 20 <= age <= 30 (rewritten from ans(Q)):")
    print(diced.to_text(), "\n")

    by_city = session.transform("posts_cube", DrillOut("dage"), strategy="rewrite")
    print("DRILL-OUT age (rewritten from pres(Q)):")
    print(by_city.to_text(), "\n")

    print("Session history:")
    for record in session.history:
        print(f"  {record}")


if __name__ == "__main__":
    main()
