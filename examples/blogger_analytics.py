#!/usr/bin/env python3
"""The paper's running example at scale: blogger analytics with OLAP rewriting.

Generates a synthetic blogger/blog-post RDF graph (the scenario of Figure 1),
materializes the analytical-schema instance, runs the two analytical queries
the paper uses (Example 1: number of posting sites per blogger, and Example
4: average word count), then applies every OLAP operation and compares the
rewriting path against from-scratch evaluation — printing the speedups and
checking that the cubes agree cell by cell.

Run with:  python examples/blogger_analytics.py [--bloggers N]
"""

import argparse

from repro import Dice, DrillOut, OLAPSession, Slice
from repro.bench.harness import ResultTable
from repro.datagen import BloggerConfig, blogger_dataset
from repro.datagen.blogger import sites_per_blogger_query, words_per_blogger_query


def run(bloggers: int) -> None:
    print(f"Generating the blogger scenario with {bloggers} bloggers ...")
    dataset = blogger_dataset(BloggerConfig(bloggers=bloggers, multi_city_fraction=0.25))
    print(f"  base graph:   {len(dataset.base_graph)} triples")
    print(f"  AnS instance: {len(dataset.instance)} triples")
    print()
    print(dataset.schema.describe())
    print()

    session = OLAPSession(dataset.instance, dataset.schema)

    sites_query = sites_per_blogger_query(dataset.schema)
    sites_cube = session.execute(sites_query)
    print(f"Example 1 cube — sites per blogger by (age, city): {len(sites_cube)} cells")
    print(sites_cube.to_text(max_rows=8))
    print()

    words_query = words_per_blogger_query(dataset.schema)
    words_cube = session.execute(words_query)
    print(f"Example 4 cube — average word count by (age, city): {len(words_cube)} cells")
    print(words_cube.to_text(max_rows=8))
    print()

    # Pick concrete dimension values for SLICE / DICE from the cube itself.
    ages = sorted(sites_cube.dimension_values("dage"), key=repr)
    cities = sorted(sites_cube.dimension_values("dcity"), key=repr)

    table = ResultTable(
        ["query", "operation", "rewrite (ms)", "scratch (ms)", "speedup", "cells", "equal"],
        title="OLAP operations: rewriting vs. from-scratch",
    )
    cases = [
        (sites_query, Slice("dage", ages[0])),
        (sites_query, Dice({"dage": (20, 35), "dcity": cities[:3]})),
        (sites_query, DrillOut("dage")),
        (sites_query, DrillOut(["dage", "dcity"])),
        (words_query, Dice({"dage": (25, 45)})),
        (words_query, DrillOut("dcity")),
    ]
    for query, operation in cases:
        comparison = session.compare_strategies(query, operation)
        table.add_row(
            query.name,
            operation.describe(),
            comparison["rewrite_seconds"] * 1000,
            comparison["scratch_seconds"] * 1000,
            comparison["speedup"],
            len(comparison["rewrite_cube"]),
            comparison["equal"],
        )
    print(table.to_text())
    print()

    # A chained navigation, every step answered by rewriting.
    print("Chained navigation (all rewritten): dice age 20-35, then drill out city")
    step1 = session.transform(sites_query, Dice({"dage": (20, 35)}), strategy="rewrite")
    step2 = session.transform(step1.query.name, DrillOut("dcity"), strategy="rewrite")
    print(step2.to_text(max_rows=8))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bloggers", type=int, default=400, help="number of bloggers to generate")
    arguments = parser.parse_args()
    run(arguments.bloggers)


if __name__ == "__main__":
    main()
